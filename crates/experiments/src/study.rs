//! The Section-5 issue-policy study: a warmed-up, multi-mix, multi-seed
//! sweep of the full issue-policy × fetch-policy × partition matrix.
//!
//! The paper's Section 5 finds that once ICOUNT fetch keeps the queues full
//! of *good* instructions, the issue-policy choice (OLDEST_FIRST vs
//! OPT_LAST / SPEC_LAST / BRANCH_FIRST) barely moves total throughput —
//! issue bandwidth is no longer the bottleneck. [`run_study`] reproduces
//! that comparison: every cell runs behind a warmup window (so cold-start
//! cache effects do not drown the small issue-policy deltas), cells are
//! independent simulations and run in parallel across OS threads, and the
//! result renders as a table or as the versioned JSON document described in
//! the crate docs.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use smt_core::{
    fetch_policy_by_name, issue_policy_by_name, FetchPartition, SimConfig, SimReport, WorkloadSpec,
    MAX_THREADS,
};
use smt_stats::json::Json;
use smt_stats::TextTable;
use smt_workload::{standard_mix, Benchmark, Program, RiscvImage, TraceImage};

/// Version of the JSON documents emitted by [`Study::to_json`],
/// [`crate::ablation::AblationStudy::to_json`] and `smt_exp --json`. Bump
/// on any breaking change to a schema. Version 2 added the ablation-study
/// document (and the optional per-report `ablations` field). Version 3
/// added the optional per-report `restored_from_checkpoint` provenance
/// flag written by the shared-warmup sweep path.
pub const JSON_SCHEMA_VERSION: u64 = 3;

/// The issue policy every delta is measured against.
pub const BASELINE_ISSUE: &str = "OLDEST_FIRST";

/// Workload mixes the studies sweep, by name.
///
/// * `standard` — the paper's 8-thread mix (4 integer + 4 FP benchmarks),
/// * `int8` — eight integer-heavy contexts (branchy, pointer-chasing),
/// * `fp8` — eight FP-heavy contexts (streaming, high ILP),
/// * `mixed4` — a four-thread half-machine mix.
pub fn mix_by_name(name: &str) -> Option<Vec<Benchmark>> {
    use Benchmark::*;
    match name {
        "standard" => Some(standard_mix()),
        "int8" => Some(vec![
            Espresso, Eqntott, Xlisp, Compress, Espresso, Eqntott, Xlisp, Compress,
        ]),
        "fp8" => Some(vec![
            Alvinn, Tomcatv, Doduc, Fpppp, Su2cor, Swm256, Alvinn, Tomcatv,
        ]),
        "mixed4" => Some(vec![Espresso, Xlisp, Alvinn, Tomcatv]),
        _ => None,
    }
}

/// The named mixes [`mix_by_name`] knows, for CLI validation and help text.
pub const STUDY_MIXES: [&str; 4] = ["standard", "int8", "fp8", "mixed4"];

/// One entry of a custom `+`-separated mix string (see [`parse_custom_mix`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixEntry {
    /// A synthetic benchmark, by canonical name (e.g. `espresso`).
    Bench(Benchmark),
    /// `riscv:PATH` — a RISC-V binary, functionally executed.
    Elf(PathBuf),
    /// `trace:PATH` — a recorded `SMT1TRCE` trace, replayed.
    Trace(PathBuf),
}

/// Whether `mix` is a custom workload list (to be parsed by
/// [`parse_custom_mix`]) rather than one of the [`STUDY_MIXES`] names.
pub fn is_custom_mix(mix: &str) -> bool {
    mix.contains(':') || mix.contains('+')
}

/// Parses a custom mix string: one workload per hardware context,
/// `+`-separated, each entry `riscv:PATH` (a RISC-V binary to execute),
/// `trace:PATH` (a recorded trace to replay) or a synthetic benchmark
/// name. `riscv:loops.elf+trace:memsum.trace+espresso` is a three-thread
/// mix. Paths are not touched here — existence is checked when the sweep
/// loads its images.
///
/// # Errors
///
/// Returns a usage-style message for an empty entry, an unknown entry
/// kind or benchmark name, or more entries than hardware contexts.
pub fn parse_custom_mix(mix: &str) -> Result<Vec<MixEntry>, String> {
    let mut entries = Vec::new();
    for entry in mix.split('+') {
        let entry = entry.trim();
        let parsed = match entry.split_once(':') {
            Some(("riscv", path)) if !path.is_empty() => MixEntry::Elf(PathBuf::from(path)),
            Some(("trace", path)) if !path.is_empty() => MixEntry::Trace(PathBuf::from(path)),
            Some((kind, _)) => {
                return Err(format!(
                    "unknown workload kind '{kind}:' in mix entry '{entry}' \
                     (known: riscv:PATH, trace:PATH)"
                ))
            }
            None => match Benchmark::ALL.iter().find(|b| b.name() == entry) {
                Some(&b) => MixEntry::Bench(b),
                None => {
                    return Err(format!(
                        "unknown benchmark '{entry}' in custom mix \
                         (entries are riscv:PATH, trace:PATH or a benchmark name)"
                    ))
                }
            },
        };
        entries.push(parsed);
    }
    if entries.is_empty() || entries.len() > MAX_THREADS {
        return Err(format!(
            "custom mix must name 1..={MAX_THREADS} workloads, got {}",
            entries.len()
        ));
    }
    Ok(entries)
}

/// Validates one `--mixes` entry: a [`STUDY_MIXES`] name or a custom
/// workload list.
///
/// # Errors
///
/// Returns the [`parse_custom_mix`] message for a bad custom mix, or an
/// unknown-name message listing the named mixes and the custom syntax.
pub fn validate_mix(mix: &str) -> Result<(), String> {
    if is_custom_mix(mix) {
        parse_custom_mix(mix).map(|_| ())
    } else if mix_by_name(mix).is_some() {
        Ok(())
    } else {
        Err(format!(
            "unknown mix '{mix}' (known: {}; or a custom riscv:PATH / \
             trace:PATH / benchmark list joined with '+')",
            STUDY_MIXES.join(", ")
        ))
    }
}

/// Pre-generated workload images for one (mix, seed) pair, shared
/// (`Arc`-cloned) between every cell that uses the pair.
#[derive(Debug, Clone)]
pub enum MixImages {
    /// A named synthetic mix as program images — the legacy
    /// `with_programs` path, byte- and fingerprint-identical to every
    /// sweep that predates custom mixes.
    Programs(Vec<Arc<Program>>),
    /// A custom workload list (`riscv:` / `trace:` entries, possibly mixed
    /// with synthetic benchmarks), run through the `with_workloads` path.
    Workloads(Vec<WorkloadSpec>),
}

impl MixImages {
    /// Installs this workload set on a configuration.
    pub fn apply(&self, cfg: SimConfig) -> SimConfig {
        match self {
            MixImages::Programs(p) => cfg.with_programs(p.clone()),
            MixImages::Workloads(w) => cfg.with_workloads(w.clone()),
        }
    }

    /// Hardware contexts this mix occupies.
    pub fn thread_count(&self) -> usize {
        match self {
            MixImages::Programs(p) => p.len(),
            MixImages::Workloads(w) => w.len(),
        }
    }
}

/// Resolves one mix string for one seed: named mixes generate their
/// synthetic program images, custom mixes load each `riscv:` / `trace:`
/// file (and generate any synthetic entries). Benchmark entries are
/// pre-generated here — once per (mix, seed) — so cells share images
/// instead of regenerating them.
///
/// # Errors
///
/// Returns the mix-syntax error or the loader's message for an unreadable
/// or malformed workload file.
pub fn resolve_mix(mix: &str, seed: u64) -> Result<MixImages, String> {
    if !is_custom_mix(mix) {
        let benchmarks = mix_by_name(mix).ok_or_else(|| format!("unknown mix '{mix}'"))?;
        return Ok(MixImages::Programs(
            benchmarks
                .iter()
                .enumerate()
                .map(|(slot, b)| Arc::new(b.generate(seed, slot as u32)))
                .collect(),
        ));
    }
    let mut workloads = Vec::new();
    for (slot, entry) in parse_custom_mix(mix)?.into_iter().enumerate() {
        workloads.push(match entry {
            MixEntry::Bench(b) => WorkloadSpec::Program(Arc::new(b.generate(seed, slot as u32))),
            MixEntry::Elf(path) => WorkloadSpec::Elf(Arc::new(RiscvImage::load(&path)?)),
            MixEntry::Trace(path) => WorkloadSpec::Trace(Arc::new(TraceImage::load(&path)?)),
        });
    }
    Ok(MixImages::Workloads(workloads))
}

/// Workload images for a sweep, resolved once per (mix, seed) and shared
/// between every cell that uses the pair. Mix names must be pre-validated
/// ([`validate_mix`]); file loads can still fail here.
pub(crate) fn generate_images(
    mixes: &[String],
    seeds: &[u64],
) -> Result<HashMap<(String, u64), MixImages>, String> {
    let mut images: HashMap<(String, u64), MixImages> = HashMap::new();
    for mix in mixes {
        for &seed in seeds {
            if let std::collections::hash_map::Entry::Vacant(e) = images.entry((mix.clone(), seed))
            {
                e.insert(resolve_mix(mix, seed)?);
            }
        }
    }
    Ok(images)
}

/// Configuration of one study sweep.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Fetch policies to cross with the issue policies.
    pub fetch_policies: Vec<String>,
    /// Issue policies under study.
    pub issue_policies: Vec<String>,
    /// Fetch partitions to sweep.
    pub partitions: Vec<FetchPartition>,
    /// Workload mixes: [`STUDY_MIXES`] names or custom `riscv:` /
    /// `trace:` lists (see [`validate_mix`]).
    pub mixes: Vec<String>,
    /// Workload-generation seeds; every cell runs once per seed.
    pub seeds: Vec<u64>,
    /// Measured cycles per cell (after warmup).
    pub cycles: u64,
    /// Warmup cycles excluded from every cell's statistics.
    pub warmup: u64,
    /// Worker threads for the sweep; `0` means one per available core.
    pub jobs: usize,
    /// Warm each unique (mix, seed, partition) once under the canonical
    /// configuration and fork the checkpoint across the policy
    /// cross-product (see [`crate::warmup`]). `false` recomputes the same
    /// canonical warmup per cell; results are byte-identical either way.
    pub share_warmup: bool,
    /// Cache the per-key warmup checkpoints in this directory
    /// (`--checkpoint-dir`); entries are fingerprint-validated on load and
    /// recomputed on any mismatch.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            issue_policies: vec![
                "oldest".into(),
                "opt_last".into(),
                "spec_last".into(),
                "branch_first".into(),
            ],
            // PR 5's hot-loop speedup bought the wider default matrix the
            // PR-3 roadmap item asked for: the 2.2 (narrow per-thread) and
            // 4.4 (over-provisioned) partitions bracket the paper's 2.8,
            // and a third seed tightens every mean.
            partitions: vec![
                FetchPartition::new(2, 2),
                FetchPartition::new(2, 8),
                FetchPartition::new(4, 4),
            ],
            mixes: vec!["standard".into(), "int8".into(), "fp8".into()],
            seeds: vec![42, 1337, 7],
            cycles: 20_000,
            warmup: 10_000,
            jobs: 0,
            share_warmup: true,
            checkpoint_dir: None,
        }
    }
}

impl StudyConfig {
    /// Validates every policy, partition and mix name.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message naming the first unknown entry.
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.fetch_policies {
            if fetch_policy_by_name(f).is_none() {
                return Err(format!("unknown fetch policy '{f}'"));
            }
        }
        for i in &self.issue_policies {
            if issue_policy_by_name(i).is_none() {
                return Err(format!("unknown issue policy '{i}'"));
            }
        }
        for m in &self.mixes {
            validate_mix(m)?;
        }
        if self.fetch_policies.is_empty()
            || self.issue_policies.is_empty()
            || self.partitions.is_empty()
            || self.mixes.is_empty()
            || self.seeds.is_empty()
        {
            return Err("study sweep axes must all be non-empty".to_string());
        }
        Ok(())
    }

    /// Number of cells the sweep will run.
    pub fn cell_count(&self) -> usize {
        self.fetch_policies.len()
            * self.issue_policies.len()
            * self.partitions.len()
            * self.mixes.len()
            * self.seeds.len()
    }
}

/// One completed cell of the study matrix.
#[derive(Debug, Clone)]
pub struct StudyCell {
    /// Canonical fetch-policy name (e.g. `"ICOUNT"`).
    pub fetch: String,
    /// Canonical issue-policy name (e.g. `"OPT_LAST"`).
    pub issue: String,
    /// Fetch partition this cell ran.
    pub partition: FetchPartition,
    /// Workload-mix name.
    pub mix: String,
    /// Workload-generation seed.
    pub seed: u64,
    /// The full simulation report for the measured window.
    pub report: SimReport,
}

/// Results of one sweep: the configuration plus every cell.
#[derive(Debug, Clone)]
pub struct Study {
    /// The sweep configuration that produced these cells.
    pub config: StudyConfig,
    /// One entry per matrix cell, in deterministic
    /// (mix, seed, partition, fetch, issue) order.
    pub cells: Vec<StudyCell>,
    /// Warmup simulations actually executed: one per unique (mix, seed,
    /// partition) when warmups are shared, one per cell when not, fewer
    /// when a checkpoint directory served cached entries. Deliberately not
    /// part of [`Study::to_json`] — the shared and cold paths produce
    /// byte-identical documents.
    pub warmups_performed: usize,
}

/// Runs the full study matrix, parallelized across OS threads. Each cell is
/// an independent [`Simulator`](smt_core::Simulator), so the sweep scales to
/// the available cores; program images are generated once per (mix, seed)
/// and shared between the cells that use them. With
/// [`StudyConfig::share_warmup`] (the default) the warmup window is also
/// computed once per unique (mix, seed, partition) and forked across the
/// fetch × issue cross-product as a checkpoint (see [`crate::warmup`]).
///
/// # Errors
///
/// Returns the [`StudyConfig::validate`] message for bad names.
pub fn run_study(cfg: &StudyConfig) -> Result<Study, String> {
    cfg.validate()?;

    let images = generate_images(&cfg.mixes, &cfg.seeds)?;

    // The work list: one spec per cell, in deterministic order.
    struct Spec<'a> {
        fetch: &'a str,
        issue: &'a str,
        partition: FetchPartition,
        mix: &'a str,
        seed: u64,
    }
    let mut specs = Vec::with_capacity(cfg.cell_count());
    for mix in &cfg.mixes {
        for &seed in &cfg.seeds {
            for &partition in &cfg.partitions {
                for fetch in &cfg.fetch_policies {
                    for issue in &cfg.issue_policies {
                        specs.push(Spec {
                            fetch,
                            issue,
                            partition,
                            mix,
                            seed,
                        });
                    }
                }
            }
        }
    }

    // One canonical warmup checkpoint per unique (mix, seed, partition),
    // computed up front (in parallel) and forked across every cell that
    // shares the key. The cold path recomputes the identical canonical
    // warmup per cell instead, so both paths yield byte-identical cells.
    let mut keys: Vec<(String, u64, FetchPartition)> = Vec::new();
    for mix in &cfg.mixes {
        for &seed in &cfg.seeds {
            for &partition in &cfg.partitions {
                keys.push((mix.clone(), seed, partition));
            }
        }
    }
    let (shared, mut warmups_performed) = if cfg.share_warmup {
        let blobs = crate::parallel_map(keys.len(), cfg.jobs, |i| {
            let (mix, seed, partition) = &keys[i];
            crate::warmup::warm_checkpoint(
                &images[&(mix.clone(), *seed)],
                mix,
                *seed,
                *partition,
                cfg.warmup,
                cfg.checkpoint_dir.as_deref(),
            )
        });
        let computed = blobs.iter().filter(|(_, computed)| *computed).count();
        let map: HashMap<(String, u64, FetchPartition), Arc<Vec<u8>>> = keys
            .iter()
            .cloned()
            .zip(blobs.into_iter().map(|(bytes, _)| bytes))
            .collect();
        (Some(map), computed)
    } else {
        (None, 0)
    };

    let cells = crate::parallel_map(specs.len(), cfg.jobs, |i| {
        let spec = &specs[i];
        let mix_images = &images[&(spec.mix.to_string(), spec.seed)];
        let checkpoint = match &shared {
            Some(map) => map[&(spec.mix.to_string(), spec.seed, spec.partition)].clone(),
            None => Arc::new(crate::warmup::compute_checkpoint(
                mix_images,
                spec.seed,
                spec.partition,
                cfg.warmup,
            )),
        };
        let cell_cfg = mix_images
            .apply(SimConfig::new())
            .with_seed(spec.seed)
            .with_fetch(fetch_policy_by_name(spec.fetch).expect("validated"))
            .with_issue(issue_policy_by_name(spec.issue).expect("validated"))
            .with_partition(spec.partition);
        let report = crate::warmup::fork_cell(cell_cfg, &checkpoint, cfg.cycles);
        StudyCell {
            fetch: report.fetch_policy.clone(),
            issue: report.issue_policy.clone(),
            partition: spec.partition,
            mix: spec.mix.to_string(),
            seed: spec.seed,
            report,
        }
    });
    if !cfg.share_warmup {
        warmups_performed = cells.len();
    }
    Ok(Study {
        config: cfg.clone(),
        cells,
        warmups_performed,
    })
}

impl Study {
    /// The cell's IPC delta against the OLDEST_FIRST cell with the same
    /// fetch policy, partition, mix and seed (`None` when the baseline was
    /// not part of the sweep; `0.0` for baseline cells themselves).
    pub fn delta_vs_baseline(&self, cell: &StudyCell) -> Option<f64> {
        let base = self.cells.iter().find(|c| {
            c.issue == BASELINE_ISSUE
                && c.fetch == cell.fetch
                && c.partition == cell.partition
                && c.mix == cell.mix
                && c.seed == cell.seed
        })?;
        Some(cell.report.total_ipc() - base.report.total_ipc())
    }

    /// Mean total IPC per issue policy, averaged over every fetch policy,
    /// partition, mix and seed, in first-seen order.
    pub fn mean_ipc_by_issue(&self) -> Vec<(String, f64)> {
        mean_by(&self.cells, |c| c.issue.clone())
    }

    /// Mean total IPC per fetch policy, restricted to the baseline issue
    /// policy so the comparison is not diluted by issue-policy variation.
    pub fn mean_ipc_by_fetch(&self) -> Vec<(String, f64)> {
        let base: Vec<StudyCell> = self
            .cells
            .iter()
            .filter(|c| c.issue == BASELINE_ISSUE)
            .cloned()
            .collect();
        if base.is_empty() {
            mean_by(&self.cells, |c| c.fetch.clone())
        } else {
            mean_by(&base, |c| c.fetch.clone())
        }
    }

    /// Max-minus-min of the per-issue-policy mean IPCs: how much the issue
    /// policy choice moves throughput.
    pub fn issue_ipc_spread(&self) -> f64 {
        spread(&self.mean_ipc_by_issue())
    }

    /// Max-minus-min of the per-fetch-policy mean IPCs: how much the fetch
    /// policy choice moves throughput.
    pub fn fetch_ipc_spread(&self) -> f64 {
        spread(&self.mean_ipc_by_fetch())
    }

    /// A Section-5-style table: one row per (partition, mix, seed, fetch),
    /// one column per issue policy, cells in total IPC.
    pub fn summary_table(&self) -> TextTable {
        let mut issues: Vec<String> = Vec::new();
        for c in &self.cells {
            if !issues.contains(&c.issue) {
                issues.push(c.issue.clone());
            }
        }
        let mut table = TextTable::new();
        let mut header = vec!["scheme/mix/seed".to_string()];
        header.extend(issues.iter().cloned());
        table.header(header);
        let mut seen: Vec<(String, FetchPartition, String, u64)> = Vec::new();
        for c in &self.cells {
            let key = (c.fetch.clone(), c.partition, c.mix.clone(), c.seed);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let mut row = vec![format!("{}.{}/{}/{}", c.fetch, c.partition, c.mix, c.seed)];
            for issue in &issues {
                let ipc = self
                    .cells
                    .iter()
                    .find(|x| {
                        x.issue == *issue
                            && x.fetch == c.fetch
                            && x.partition == c.partition
                            && x.mix == c.mix
                            && x.seed == c.seed
                    })
                    .map(|x| x.report.total_ipc());
                row.push(match ipc {
                    Some(ipc) => format!("{ipc:.2}"),
                    None => "-".to_string(),
                });
            }
            table.row(row);
        }
        table
    }

    /// The versioned machine-readable document (see the crate docs for the
    /// schema). `smt_exp --study issue --json out.json` writes exactly this,
    /// pretty-rendered.
    pub fn to_json(&self) -> Json {
        let cfg = &self.config;
        let config = Json::object([
            ("cycles", Json::from(cfg.cycles)),
            ("warmup_cycles", Json::from(cfg.warmup)),
            (
                "fetch_policies",
                Json::array(cfg.fetch_policies.iter().map(String::as_str)),
            ),
            (
                "issue_policies",
                Json::array(cfg.issue_policies.iter().map(String::as_str)),
            ),
            (
                "partitions",
                Json::array(cfg.partitions.iter().map(|p| p.to_string())),
            ),
            ("mixes", Json::array(cfg.mixes.iter().map(String::as_str))),
            ("seeds", Json::array(cfg.seeds.iter().copied())),
        ]);
        let cells = Json::array(self.cells.iter().map(|c| {
            Json::object([
                ("fetch", Json::from(c.fetch.clone())),
                ("issue", Json::from(c.issue.clone())),
                ("partition", Json::from(c.partition.to_string())),
                ("mix", Json::from(c.mix.clone())),
                ("seed", Json::from(c.seed)),
                ("total_ipc", Json::from(c.report.total_ipc())),
                (
                    "delta_vs_oldest",
                    match self.delta_vs_baseline(c) {
                        Some(d) => Json::from(d),
                        None => Json::Null,
                    },
                ),
                ("report", c.report.to_json()),
            ])
        }));
        let issue_summary = Json::array(self.mean_ipc_by_issue().into_iter().map(|(name, ipc)| {
            let mean_delta: f64 = {
                let deltas: Vec<f64> = self
                    .cells
                    .iter()
                    .filter(|c| c.issue == name)
                    .filter_map(|c| self.delta_vs_baseline(c))
                    .collect();
                if deltas.is_empty() {
                    0.0
                } else {
                    deltas.iter().sum::<f64>() / deltas.len() as f64
                }
            };
            Json::object([
                ("issue", Json::from(name)),
                ("mean_ipc", Json::from(ipc)),
                ("mean_delta_vs_oldest", Json::from(mean_delta)),
            ])
        }));
        let fetch_summary = Json::array(self.mean_ipc_by_fetch().into_iter().map(|(name, ipc)| {
            Json::object([("fetch", Json::from(name)), ("mean_ipc", Json::from(ipc))])
        }));
        Json::object([
            ("schema_version", Json::from(JSON_SCHEMA_VERSION)),
            ("kind", Json::from("smt-exp-study")),
            ("study", Json::from("issue")),
            ("config", config),
            ("cells", cells),
            (
                "summary",
                Json::object([
                    ("baseline_issue", Json::from(BASELINE_ISSUE)),
                    ("issue_policies", issue_summary),
                    ("fetch_policies", fetch_summary),
                    ("issue_ipc_spread", Json::from(self.issue_ipc_spread())),
                    ("fetch_ipc_spread", Json::from(self.fetch_ipc_spread())),
                ]),
            ),
        ])
    }
}

fn mean_by(cells: &[StudyCell], key: impl Fn(&StudyCell) -> String) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut sums: HashMap<String, (f64, usize)> = HashMap::new();
    for c in cells {
        let k = key(c);
        if !order.contains(&k) {
            order.push(k.clone());
        }
        let e = sums.entry(k).or_insert((0.0, 0));
        e.0 += c.report.total_ipc();
        e.1 += 1;
    }
    order
        .into_iter()
        .map(|k| {
            let (sum, n) = sums[&k];
            (k, sum / n as f64)
        })
        .collect()
}

fn spread(means: &[(String, f64)]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &(_, ipc) in means {
        min = min.min(ipc);
        max = max.max(ipc);
    }
    if means.is_empty() {
        0.0
    } else {
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_study() -> StudyConfig {
        StudyConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            issue_policies: vec!["oldest".into(), "spec_last".into()],
            mixes: vec!["mixed4".into()],
            seeds: vec![42],
            cycles: 600,
            warmup: 200,
            jobs: 2,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn default_config_is_valid_and_sized() {
        let cfg = StudyConfig::default();
        cfg.validate().unwrap();
        // 2 fetch × 4 issue × 3 partitions × 3 mixes × 3 seeds.
        assert_eq!(cfg.cell_count(), 216);
        assert!(
            cfg.seeds.contains(&7),
            "the widened default matrix carries seed 7"
        );
        for p in ["2.2", "4.4", "2.8"] {
            assert!(
                cfg.partitions.contains(&FetchPartition::parse(p).unwrap()),
                "the widened default matrix carries the {p} partition"
            );
        }
    }

    #[test]
    fn validate_rejects_unknown_names() {
        let cfg = StudyConfig {
            mixes: vec!["nonesuch".into()],
            ..StudyConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = StudyConfig {
            issue_policies: vec!["nonesuch".into()],
            ..StudyConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = StudyConfig {
            seeds: Vec::new(),
            ..StudyConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn every_named_mix_resolves() {
        for name in STUDY_MIXES {
            let mix = mix_by_name(name).unwrap();
            assert!(!mix.is_empty(), "{name} is empty");
        }
        assert!(mix_by_name("nope").is_none());
    }

    fn elf_path(stem: &str) -> String {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../testdata/riscv")
            .join(format!("{stem}.elf"))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn custom_mixes_parse_validate_and_resolve() {
        assert!(is_custom_mix("riscv:a.elf"));
        assert!(is_custom_mix("espresso+tomcatv"));
        assert!(!is_custom_mix("standard"));

        let entries = parse_custom_mix("riscv:a.elf+trace:b.trace+espresso").unwrap();
        assert_eq!(entries.len(), 3);
        assert!(matches!(entries[0], MixEntry::Elf(_)));
        assert!(matches!(entries[1], MixEntry::Trace(_)));
        assert!(matches!(entries[2], MixEntry::Bench(Benchmark::Espresso)));

        assert!(parse_custom_mix("bogus:a")
            .unwrap_err()
            .contains("unknown workload kind"));
        assert!(parse_custom_mix("riscv:").is_err());
        assert!(parse_custom_mix("nonesuch+espresso")
            .unwrap_err()
            .contains("unknown benchmark"));

        validate_mix("standard").unwrap();
        assert!(validate_mix("nonesuch").is_err());
        validate_mix("espresso+espresso").unwrap();

        // Loader errors surface at resolve time, with the path named.
        assert!(resolve_mix("riscv:/no/such/file.elf", 42).is_err());
        let resolved = resolve_mix(&format!("riscv:{}+espresso", elf_path("loops")), 42).unwrap();
        assert_eq!(resolved.thread_count(), 2);
        assert!(matches!(resolved, MixImages::Workloads(_)));
    }

    #[test]
    fn riscv_mix_study_reports_icount_vs_rr_frontend_losses() {
        // The acceptance measurement for the real-binary workload path:
        // ICOUNT vs RR on the checked-in ELFs, with every cell's measured
        // lost_frontend_full present in the study JSON.
        let mix = format!(
            "riscv:{}+riscv:{}+riscv:{}",
            elf_path("loops"),
            elf_path("memsum"),
            elf_path("gcd")
        );
        let cfg = StudyConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            issue_policies: vec!["oldest".into()],
            partitions: vec![FetchPartition::new(2, 8)],
            mixes: vec![mix.clone()],
            seeds: vec![42],
            cycles: 1_500,
            warmup: 500,
            jobs: 2,
            ..StudyConfig::default()
        };
        let study = run_study(&cfg).unwrap();
        assert_eq!(study.cells.len(), 2);
        for c in &study.cells {
            assert!(c.report.total_committed() > 0, "real workload starved");
            assert_eq!(c.report.threads[0].benchmark, "loops");
            assert_eq!(c.mix, mix);
        }
        let doc = study.to_json().render_pretty();
        let back = Json::parse(&doc).unwrap();
        let mut fetches = Vec::new();
        for cell in back.get("cells").and_then(Json::as_array).unwrap() {
            let lost = cell
                .get("report")
                .and_then(|r| r.get("fetch"))
                .and_then(|f| f.get("lost_frontend_full"))
                .and_then(Json::as_u64);
            assert!(lost.is_some(), "cell lacks measured lost_frontend_full");
            fetches.push(
                cell.get("fetch")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
        assert!(fetches.contains(&"RR".to_string()));
        assert!(fetches.contains(&"ICOUNT".to_string()));
        // The whole document — warmup forking included — is reproducible.
        assert_eq!(doc, run_study(&cfg).unwrap().to_json().render_pretty());
    }

    #[test]
    fn tiny_study_runs_all_cells_with_warmup() {
        let cfg = tiny_study();
        let study = run_study(&cfg).unwrap();
        assert_eq!(study.cells.len(), cfg.cell_count());
        for c in &study.cells {
            assert_eq!(c.report.cycles, cfg.cycles);
            assert_eq!(c.report.warmup_cycles, cfg.warmup);
            assert!(c.report.total_committed() > 0, "cell made no progress");
        }
        // Baseline cells have exactly zero delta; every cell has one.
        for c in &study.cells {
            let d = study.delta_vs_baseline(c).expect("baseline in sweep");
            if c.issue == BASELINE_ISSUE {
                assert_eq!(d, 0.0);
            }
        }
        // Parallel scheduling must not perturb results: rerun serially.
        let serial = run_study(&StudyConfig {
            jobs: 1,
            ..cfg.clone()
        })
        .unwrap();
        for (a, b) in study.cells.iter().zip(serial.cells.iter()) {
            assert_eq!(a.report.total_committed(), b.report.total_committed());
            assert_eq!(
                (a.fetch.clone(), a.issue.clone()),
                (b.fetch.clone(), b.issue.clone())
            );
        }
    }

    #[test]
    fn shared_and_cold_warmup_paths_are_byte_identical() {
        let cfg = tiny_study();
        let shared = run_study(&cfg).unwrap();
        let cold = run_study(&StudyConfig {
            share_warmup: false,
            ..cfg.clone()
        })
        .unwrap();
        // One warmup per unique (mix, seed, partition) vs one per cell.
        assert_eq!(
            shared.warmups_performed,
            cfg.mixes.len() * cfg.seeds.len() * cfg.partitions.len()
        );
        assert_eq!(cold.warmups_performed, cfg.cell_count());
        assert!(shared.warmups_performed < cold.warmups_performed);
        // The sharing must be invisible in the result document.
        assert_eq!(
            shared.to_json().render_pretty(),
            cold.to_json().render_pretty(),
            "warmup sharing changed the study's results"
        );
        // Every cell self-describes its checkpoint provenance.
        for c in &shared.cells {
            assert!(c.report.restored_from_checkpoint);
        }
    }

    #[test]
    fn worker_count_never_leaks_into_the_study_document() {
        // The scheduler-determinism property: the full `--study issue`
        // JSON document must be byte-identical whether the sweep runs on
        // one worker, two, or eight (oversubscribed on this box) — the
        // work-stealing queue may reorder *execution* but never results.
        let base = tiny_study();
        let reference = run_study(&StudyConfig {
            jobs: 1,
            ..base.clone()
        })
        .unwrap()
        .to_json()
        .render_pretty();
        for jobs in [2, 8] {
            let doc = run_study(&StudyConfig {
                jobs,
                ..base.clone()
            })
            .unwrap()
            .to_json()
            .render_pretty();
            assert_eq!(
                doc, reference,
                "jobs={jobs} perturbed the study document bytes"
            );
        }
    }

    #[test]
    fn checkpoint_dir_serves_repeat_sweeps_from_disk() {
        let dir = std::env::temp_dir().join(format!("smt-exp-study-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = StudyConfig {
            checkpoint_dir: Some(dir.clone()),
            ..tiny_study()
        };
        let first = run_study(&cfg).unwrap();
        assert!(first.warmups_performed > 0, "cold cache must compute");
        let second = run_study(&cfg).unwrap();
        assert_eq!(second.warmups_performed, 0, "warm cache must serve");
        assert_eq!(
            first.to_json().render_pretty(),
            second.to_json().render_pretty()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn study_json_round_trips_and_carries_summary() {
        let study = run_study(&tiny_study()).unwrap();
        let doc = study.to_json();
        let text = doc.render_pretty();
        let back = Json::parse(&text).expect("study JSON must parse");
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(JSON_SCHEMA_VERSION)
        );
        assert_eq!(
            back.get("kind").and_then(Json::as_str),
            Some("smt-exp-study")
        );
        let cells = back.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(cells.len(), study.cells.len());
        let summary = back.get("summary").unwrap();
        assert!(summary
            .get("issue_ipc_spread")
            .and_then(Json::as_f64)
            .is_some());
        assert_eq!(
            summary.get("baseline_issue").and_then(Json::as_str),
            Some(BASELINE_ISSUE)
        );
        // The table renders one row per (fetch, partition, mix, seed).
        let table = study.summary_table().to_string();
        assert!(table.contains("OLDEST_FIRST"));
        assert!(table.contains("SPEC_LAST"));
    }
}

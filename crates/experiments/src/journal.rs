//! The durable sweep journal: each completed cell's full report, appended
//! to a directory as it finishes, so a killed sweep resumes instead of
//! restarting.
//!
//! A big study is hours of compute; a SIGKILL (OOM killer, preempted CI
//! runner, an operator's ctrl-C) one cell before the end used to discard
//! all of it. With `--journal DIR` each completed cell is published to
//! `DIR` the moment it finishes — atomically, via
//! `crate::durable::atomic_write`, so a kill mid-write leaves a staging
//! file that every reader ignores, never a torn entry. Re-running the
//! identical command resumes: the sweep loads every valid journaled cell,
//! re-runs only the remainder, and produces a study document
//! **byte-identical** to an uninterrupted run (CI kills a release sweep
//! mid-flight and byte-compares exactly this).
//!
//! # Entry format (`cell-{key:016x}.smtj`)
//!
//! One file per cell, named by the cell's 64-bit identity [`journal_key`].
//! The payload is the workspace's checksummed little-endian binary framing
//! ([`smt_stats::binio`]):
//!
//! ```text
//! magic    8 bytes  "SMT1JRNL"
//! version  u32      1
//! key      u64      must equal the key in the file name
//! report   SimReport::write_bin (lossless binary report)
//! trailer  u64      FNV-1a checksum of everything above
//! ```
//!
//! The journaled report is the *lossless* binary form — the JSON report is
//! a rendering with rounded percentages, so resuming from JSON could not
//! be byte-identical.
//!
//! # Keying
//!
//! [`journal_key`] folds together the machine/workload
//! [`config_fingerprint`](smt_core::checkpoint::config_fingerprint) (which
//! deliberately excludes the fork axes) with the study tag, the cell's
//! fork-axis coordinates (fetch/issue policy, ablation, window) and the
//! cycle/warmup lengths — everything that defines the cell's result. A
//! journal directory can therefore be shared between *different* sweeps:
//! a cell is only ever resumed into a sweep that would have produced the
//! identical bytes. Failed cells are **not** journaled — deterministic
//! failures re-fail on resume, so the resumed document still reports them.
//!
//! # Robustness
//!
//! A journal entry that cannot be read or validated (torn rename, bit rot,
//! an older format version) is treated as missing: the cell re-runs and
//! the incident is recorded as a `journal_read_failed` degradation. A
//! store that fails even after retries degrades too
//! (`journal_write_failed`) — the result stays in the document, it is just
//! not durable. Neither ever aborts the sweep or changes a cell's bytes.

use std::io;
use std::path::{Path, PathBuf};

use smt_core::SimReport;
use smt_stats::binio::{invalid, BinReader, BinWriter};

/// Magic bytes opening every journal entry.
pub const JOURNAL_MAGIC: [u8; 8] = *b"SMT1JRNL";

/// Current journal entry format version. Readers reject other versions
/// (the entry is re-run, not misparsed).
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// The 64-bit identity of one cell's result: the config fingerprint (which
/// covers machine geometry, workload images and seed but deliberately not
/// the fork axes) folded with the study tag, the fork-axis coordinates
/// (`parts`) and the cycle counts (`nums`) through the workspace FNV-1a.
pub fn journal_key(config_fingerprint: u64, parts: &[&str], nums: &[u64]) -> u64 {
    let mut w = BinWriter::new(io::sink());
    let fold = |r: io::Result<()>| r.expect("writing to io::sink cannot fail");
    fold(w.u64(config_fingerprint));
    fold(w.len(parts.len()));
    for p in parts {
        fold(w.len(p.len()));
        fold(w.bytes(p.as_bytes()));
    }
    fold(w.len(nums.len()));
    for &n in nums {
        fold(w.u64(n));
    }
    w.checksum()
}

/// A sweep journal directory: one atomically-published entry per
/// completed cell.
#[derive(Debug, Clone)]
pub struct Journal {
    dir: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal directory, sweeping out any
    /// staging files a SIGKILLed predecessor left mid-write (best-effort —
    /// readers ignore staging names anyway, this just keeps the directory
    /// tidy).
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created —
    /// the caller asked for durability, so an unusable journal fails the
    /// sweep up front rather than silently running without one.
    pub fn open(dir: &Path) -> io::Result<Journal> {
        crate::durable::retry_io(|| std::fs::create_dir_all(dir))?;
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if crate::durable::is_staging_name(&entry.file_name().to_string_lossy()) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(Journal {
            dir: dir.to_path_buf(),
        })
    }

    /// The entry file for a cell key.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("cell-{key:016x}.smtj"))
    }

    /// Loads the journaled report for `key`. `Ok(None)` means no entry
    /// exists (the cell must run); `Err` is any reason an existing entry
    /// cannot be trusted — the caller records a degradation and re-runs
    /// the cell. `probe_key` names the cell for fault injection.
    pub fn load(&self, key: u64, probe_key: u64) -> Result<Option<SimReport>, String> {
        let path = self.entry_path(key);
        let bytes = match crate::durable::read_file(&path, "journal-read", probe_key) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("read failed: {e}")),
        };
        parse_entry(&bytes, key)
            .map(Some)
            .map_err(|e| e.to_string())
    }

    /// Atomically publishes `report` as the entry for `key`, retrying
    /// transient I/O. `probe_key` names the cell for fault injection.
    ///
    /// # Errors
    ///
    /// Returns the underlying error after retries; the caller records a
    /// `journal_write_failed` degradation and keeps the in-memory result.
    pub fn store(&self, key: u64, probe_key: u64, report: &SimReport) -> io::Result<()> {
        let mut bytes = Vec::new();
        let mut w = BinWriter::new(&mut bytes);
        w.bytes(&JOURNAL_MAGIC)?;
        w.u32(JOURNAL_FORMAT_VERSION)?;
        w.u64(key)?;
        report.write_bin(&mut w)?;
        w.finish()?;
        crate::durable::atomic_write(&self.entry_path(key), &bytes, "journal-store", probe_key)
    }
}

/// Validates and decodes one entry's bytes for the expected `key`.
fn parse_entry(bytes: &[u8], key: u64) -> io::Result<SimReport> {
    let mut r = BinReader::new(bytes);
    let mut magic = [0u8; 8];
    r.bytes(&mut magic)?;
    if magic != JOURNAL_MAGIC {
        return Err(invalid("bad journal entry magic"));
    }
    let version = r.u32()?;
    if version != JOURNAL_FORMAT_VERSION {
        return Err(invalid(format!(
            "unsupported journal entry version {version} \
             (this build reads version {JOURNAL_FORMAT_VERSION})"
        )));
    }
    let stored_key = r.u64()?;
    if stored_key != key {
        return Err(invalid(format!(
            "journal entry key {stored_key:016x} does not match file key {key:016x}"
        )));
    }
    let report = SimReport::read_bin(&mut r)?;
    r.finish()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> SimReport {
        let images = crate::study::resolve_mix("mixed4", 42).unwrap();
        crate::warmup::canonical_config_for(&images, 42, smt_core::FetchPartition::new(2, 8))
            .build()
            .run(80)
    }

    fn tmp_journal(tag: &str) -> (PathBuf, Journal) {
        let dir =
            std::env::temp_dir().join(format!("smt-exp-journal-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = Journal::open(&dir).unwrap();
        (dir, journal)
    }

    #[test]
    fn keys_separate_every_axis() {
        let base = journal_key(1, &["issue", "rr", "oldest"], &[100, 50]);
        assert_eq!(base, journal_key(1, &["issue", "rr", "oldest"], &[100, 50]));
        for other in [
            journal_key(2, &["issue", "rr", "oldest"], &[100, 50]),
            journal_key(1, &["issue", "icount", "oldest"], &[100, 50]),
            journal_key(1, &["ablation", "rr", "oldest"], &[100, 50]),
            journal_key(1, &["issue", "rr", "oldest"], &[100, 60]),
            journal_key(1, &["issue", "rr"], &[100, 50]),
            // Length prefixes keep adjacent strings from gluing together.
            journal_key(1, &["issue", "rrold", "est"], &[100, 50]),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn round_trip_preserves_the_report_losslessly() {
        let (dir, journal) = tmp_journal("roundtrip");
        let report = tiny_report();
        let key = journal_key(9, &["issue", "ICOUNT", "OLDEST_FIRST"], &[80, 0]);
        assert_eq!(journal.load(key, 0).unwrap(), None, "empty journal");
        journal.store(key, 0, &report).unwrap();
        let back = journal.load(key, 0).unwrap().expect("stored entry");
        assert_eq!(back, report);
        assert_eq!(back.to_json().render(), report.to_json().render());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sweeps_a_dead_predecessors_staging_files() {
        let (dir, journal) = tmp_journal("sweep");
        let key = journal_key(5, &["issue", "RR", "OLDEST_FIRST"], &[80, 0]);
        journal.store(key, 0, &tiny_report()).unwrap();
        let stale = dir.join(".cell-dead.smtj.tmp.99999");
        std::fs::write(&stale, b"torn").unwrap();
        let reopened = Journal::open(&dir).unwrap();
        assert!(!stale.exists(), "stale staging file survived open");
        assert!(
            reopened.load(key, 0).unwrap().is_some(),
            "published entries survive the sweep"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rot_and_mismatch_are_typed_never_trusted() {
        let (dir, journal) = tmp_journal("rot");
        let report = tiny_report();
        let key = journal_key(3, &["issue", "RR", "OLDEST_FIRST"], &[80, 0]);
        journal.store(key, 0, &report).unwrap();
        let pristine = std::fs::read(journal.entry_path(key)).unwrap();

        // A payload bit flip fails the checksum (or a bounds check).
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        std::fs::write(journal.entry_path(key), &flipped).unwrap();
        assert!(journal.load(key, 0).is_err(), "bit rot must not be trusted");

        // Truncation (a torn non-atomic write would look like this).
        let torn = &pristine[..pristine.len() / 2];
        std::fs::write(journal.entry_path(key), torn).unwrap();
        assert!(journal.load(key, 0).is_err());

        // A valid entry under the wrong file name is a key mismatch.
        let other = journal_key(4, &["issue", "RR", "OLDEST_FIRST"], &[80, 0]);
        std::fs::write(journal.entry_path(other), &pristine).unwrap();
        let err = journal.load(other, 0).unwrap_err();
        assert!(err.contains("does not match"), "{err}");

        // A future format version is refused, not misparsed.
        let mut future = pristine.clone();
        future[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(journal.entry_path(key), &future).unwrap();
        let err = journal.load(key, 0).unwrap_err();
        assert!(err.contains("version"), "{err}");

        // Repair and the entry serves again.
        std::fs::write(journal.entry_path(key), &pristine).unwrap();
        assert_eq!(journal.load(key, 0).unwrap(), Some(report));
        std::fs::remove_dir_all(&dir).ok();
    }
}

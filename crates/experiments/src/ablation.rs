//! The mechanism-ablation study: every [`Ablation`] against the
//! un-ablated baseline, across fetch policies × partitions × mixes ×
//! seeds × {cold, warm} measurement windows.
//!
//! Section 4 of the paper attributes throughput effects by turning one
//! mechanism off at a time; this study does the same with the typed
//! [`Ablations`] set `SimConfig` carries, and it
//! exists to convert two specific attribution questions into
//! machine-readable numbers:
//!
//! 1. **The ~2% wrong-path claim** — how much IPC does wrong-path I-fetch
//!    bank/port contention cost? `exempt_wrong_path_bank_arbitration`
//!    removes exactly that contention, so its warm-window IPC delta *is*
//!    the cost ([`AblationStudy::wrong_path_claim`]).
//! 2. **The ICOUNT-vs-RR gap decomposition** — how much of the gap is
//!    cold-start I-cache behaviour versus queue clog? `perfect_icache`
//!    removes the I-cache term (compare the cold-window gap with and
//!    without it), and `infinite_frontend_queues` removes the queue-clog
//!    term ICOUNT's feedback avoids — visible directly in the
//!    `lost_frontend_full` bucket shift ([`AblationStudy::gap`]).
//!
//! Cells are independent simulations and run in parallel across OS
//! threads; `smt_exp --study ablation --json out.json` writes the
//! schema-version-4 document described in the crate docs. Warm-window
//! cells fork from checkpoints warmed under each cell's own fetch policy
//! and ablation set — see [`crate::warmup`] for why ablations, unlike the
//! issue study's policy axes, preclude sharing one warmup across cells.
//!
//! Like the issue study, the sweep contains cell faults (a failing cell
//! becomes a [`FailedAblationCell`] in `failed_cells` instead of aborting
//! the matrix) and resumes from a durable `--journal` directory (see
//! [`crate::journal`]).

use std::fmt;

use smt_core::checkpoint::config_fingerprint;
use smt_core::{fetch_policy_by_name, Ablation, Ablations, FetchPartition, SimConfig, SimReport};
use smt_stats::json::Json;
use smt_stats::TextTable;

use crate::fault::{CellError, Degradation, DegradeReason};
use crate::journal::{journal_key, Journal};
use crate::study::{validate_mix, JSON_SCHEMA_VERSION};

/// The paper's claim the wrong-path exemption quantifies: wrong-path
/// instruction fetching costs on the order of 2% of throughput.
pub const PAPER_WRONG_PATH_CLAIM_PCT: f64 = 2.0;

/// One measurement window kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Window {
    /// Measured from the cold start (cold caches and predictor).
    Cold,
    /// Measured after the configured warmup (warm caches and predictor).
    Warm,
}

impl Window {
    /// Both windows, in sweep order.
    pub const ALL: [Window; 2] = [Window::Cold, Window::Warm];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Window::Cold => "cold",
            Window::Warm => "warm",
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one ablation sweep. Issue policy is fixed at
/// OLDEST_FIRST — the Section-5 study showed it is not a sensitive axis.
#[derive(Debug, Clone)]
pub struct AblationStudyConfig {
    /// Fetch policies to sweep (the gap decomposition needs both `rr` and
    /// `icount`).
    pub fetch_policies: Vec<String>,
    /// Ablations under study, by canonical name (see [`Ablation::name`]);
    /// the un-ablated baseline is always run in addition.
    pub ablations: Vec<String>,
    /// Fetch partitions to sweep.
    pub partitions: Vec<FetchPartition>,
    /// Workload mixes: named mixes or custom `riscv:` / `trace:` lists
    /// (see [`validate_mix`]).
    pub mixes: Vec<String>,
    /// Workload-generation seeds; every cell runs once per seed.
    pub seeds: Vec<u64>,
    /// Measured cycles per cell (both windows measure this many cycles).
    pub cycles: u64,
    /// Warmup cycles for the warm window (the cold window uses none).
    pub warmup: u64,
    /// Worker threads for the sweep; `0` means one per available core.
    pub jobs: usize,
    /// Run warm-window cells through the checkpoint path: each warm cell
    /// forks from a checkpoint warmed under its own configuration, served
    /// from [`AblationStudyConfig::checkpoint_dir`] when it holds a valid
    /// entry (an ablation changes the machine itself, so — unlike the
    /// issue study — warmups here cannot be shared *across* cells without
    /// changing the attribution numbers; the cache dedups repeat sweeps
    /// instead). `false` (`--cold-warmup`) recomputes every warmup,
    /// ignoring the cache; results are byte-identical either way.
    pub share_warmup: bool,
    /// Cache the per-key warmup checkpoints in this directory
    /// (`--checkpoint-dir`); entries are fingerprint-validated on load and
    /// recomputed on any mismatch.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Durable result journal directory (`--journal`): every completed
    /// cell is atomically published there as it finishes, and a re-run of
    /// the identical sweep resumes from the valid entries, byte-identical
    /// to an uninterrupted run (see [`crate::journal`]).
    pub journal: Option<std::path::PathBuf>,
}

impl Default for AblationStudyConfig {
    fn default() -> AblationStudyConfig {
        AblationStudyConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            ablations: Ablation::ALL.iter().map(|a| a.name().to_string()).collect(),
            // Widened in PR 5 alongside the issue-policy study defaults:
            // the 2.2/4.4 partitions and seed 7 ride the hot-loop speedup.
            partitions: vec![
                FetchPartition::new(2, 2),
                FetchPartition::new(2, 8),
                FetchPartition::new(4, 4),
            ],
            mixes: vec!["standard".into(), "int8".into(), "fp8".into()],
            seeds: vec![42, 1337, 7],
            cycles: 20_000,
            warmup: 10_000,
            jobs: 0,
            share_warmup: true,
            checkpoint_dir: None,
            journal: None,
        }
    }
}

impl AblationStudyConfig {
    /// Validates every policy, ablation, partition and mix name.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message naming the first problem.
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.fetch_policies {
            if fetch_policy_by_name(f).is_none() {
                return Err(format!("unknown fetch policy '{f}'"));
            }
        }
        for a in &self.ablations {
            if Ablation::by_name(a).is_none() {
                let known: Vec<&str> = Ablation::ALL.iter().map(|a| a.name()).collect();
                return Err(format!(
                    "unknown ablation '{a}' (known: {})",
                    known.join(", ")
                ));
            }
        }
        for m in &self.mixes {
            validate_mix(m)?;
        }
        if self.fetch_policies.is_empty()
            || self.ablations.is_empty()
            || self.partitions.is_empty()
            || self.mixes.is_empty()
            || self.seeds.is_empty()
        {
            return Err("ablation sweep axes must all be non-empty".to_string());
        }
        if self.warmup == 0 {
            return Err("the warm window needs --warmup > 0".to_string());
        }
        Ok(())
    }

    /// Number of cells the sweep will run (baseline + each ablation, per
    /// fetch policy, partition, mix, seed and window).
    pub fn cell_count(&self) -> usize {
        (1 + self.ablations.len())
            * self.fetch_policies.len()
            * self.partitions.len()
            * self.mixes.len()
            * self.seeds.len()
            * Window::ALL.len()
    }
}

/// One completed cell of the ablation matrix.
#[derive(Debug, Clone)]
pub struct AblationCell {
    /// The active ablation's canonical name, or `None` for a baseline cell.
    pub ablation: Option<String>,
    /// Canonical fetch-policy name (e.g. `"ICOUNT"`).
    pub fetch: String,
    /// Fetch partition this cell ran.
    pub partition: FetchPartition,
    /// Workload-mix name.
    pub mix: String,
    /// Workload-generation seed.
    pub seed: u64,
    /// Which measurement window the cell measured.
    pub window: Window,
    /// The full simulation report for the measured window.
    pub report: SimReport,
}

/// One contained cell failure of the ablation matrix: the cell's
/// coordinates plus the typed error. Failed cells appear in the
/// document's `failed_cells` list (in deterministic spec order) instead
/// of aborting the sweep.
#[derive(Debug, Clone)]
pub struct FailedAblationCell {
    /// The active ablation's canonical name, or `None` for a baseline cell.
    pub ablation: Option<String>,
    /// Canonical fetch-policy name.
    pub fetch: String,
    /// Fetch partition the cell was to run.
    pub partition: FetchPartition,
    /// Workload-mix name.
    pub mix: String,
    /// Workload-generation seed.
    pub seed: u64,
    /// Which measurement window the cell was to measure.
    pub window: Window,
    /// Why the cell did not complete.
    pub error: CellError,
}

/// The loss-bucket shifts of an ablated cell against its baseline: how the
/// removed mechanism's slot losses moved. Positive values mean the ablated
/// run lost *more* slots to that cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossShift {
    /// Change in slots lost to I-cache misses.
    pub lost_icache: i64,
    /// Change in slots lost to front-end/queue back-pressure.
    pub lost_frontend_full: i64,
    /// Change in wrong-path fetch opportunities lost to bank/port
    /// contention.
    pub wrong_path_fetch_conflicts: i64,
}

/// Results of one ablation sweep: the configuration plus every cell.
#[derive(Debug, Clone)]
pub struct AblationStudy {
    /// The sweep configuration that produced these cells.
    pub config: AblationStudyConfig,
    /// One entry per matrix cell, in deterministic
    /// (mix, seed, partition, fetch, window, ablation) order with the
    /// baseline first within each group.
    pub cells: Vec<AblationCell>,
    /// Contained cell failures, in the same deterministic spec order.
    /// Empty on a fault-free sweep.
    pub failed: Vec<FailedAblationCell>,
    /// Degraded-but-recovered incidents (journal entries that could not
    /// be read or written, warmup-cache misses that fell back to
    /// recomputation), in deterministic order: journal-read incidents in
    /// spec order first, then the cells' own incidents in spec order.
    pub degraded: Vec<Degradation>,
    /// Warmup simulations actually executed for the warm windows: one per
    /// warm cell on a cold cache, fewer (down to zero) when a checkpoint
    /// directory served cached entries. Deliberately not part of
    /// [`AblationStudy::to_json`] — the cached and cold paths produce
    /// byte-identical documents.
    pub warmups_performed: usize,
    /// Cells resumed from the journal instead of re-run. Deliberately not
    /// part of [`AblationStudy::to_json`] — a resumed document must stay
    /// byte-identical to an uninterrupted one.
    pub journal_loaded: usize,
}

/// Runs the full ablation matrix, parallelized across OS threads. Program
/// images are generated once per (mix, seed) and shared between the cells
/// that use them; with [`AblationStudyConfig::share_warmup`] (the default)
/// every warm cell forks from a checkpoint warmed under its own
/// configuration, served from the `--checkpoint-dir` cache across repeat
/// sweeps (see [`crate::warmup`]).
///
/// Cell faults are contained (a failing cell becomes a
/// [`FailedAblationCell`]) and the sweep resumes from
/// [`AblationStudyConfig::journal`] when set — same containment contract
/// as [`crate::study::run_study`].
///
/// # Errors
///
/// Returns the [`AblationStudyConfig::validate`] message for bad names,
/// or the open error when the requested journal directory cannot be
/// created.
pub fn run_ablation_study(cfg: &AblationStudyConfig) -> Result<AblationStudy, String> {
    cfg.validate()?;

    let images = crate::study::generate_images(&cfg.mixes, &cfg.seeds);

    struct Spec<'a> {
        ablation: Option<Ablation>,
        fetch: &'a str,
        partition: FetchPartition,
        mix: &'a str,
        seed: u64,
        window: Window,
    }
    let mut ablation_axis: Vec<Option<Ablation>> = vec![None];
    ablation_axis.extend(
        cfg.ablations
            .iter()
            .map(|a| Some(Ablation::by_name(a).expect("validated above"))),
    );
    let mut specs = Vec::with_capacity(cfg.cell_count());
    for mix in &cfg.mixes {
        for &seed in &cfg.seeds {
            for &partition in &cfg.partitions {
                for fetch in &cfg.fetch_policies {
                    for &window in &Window::ALL {
                        for &ablation in &ablation_axis {
                            specs.push(Spec {
                                ablation,
                                fetch,
                                partition,
                                mix,
                                seed,
                                window,
                            });
                        }
                    }
                }
            }
        }
    }

    let cell_label = |spec: &Spec| {
        format!(
            "{}/{}/{}/{}/{}/s{}",
            spec.ablation.map_or("baseline", |a| a.name()),
            spec.fetch,
            spec.window,
            spec.partition,
            spec.mix,
            spec.seed
        )
    };

    // The durable journal and per-(mix, seed, partition) fingerprints —
    // an ablation or fetch policy changes the machine's behaviour, not
    // its fingerprinted geometry, so the fork axes live in the key's
    // string parts instead (see `journal_key`).
    let journal = match &cfg.journal {
        Some(dir) => Some(
            Journal::open(dir)
                .map_err(|e| format!("cannot open journal {}: {e}", dir.display()))?,
        ),
        None => None,
    };
    let mut fingerprints: std::collections::HashMap<(String, u64, FetchPartition), u64> =
        std::collections::HashMap::new();
    if journal.is_some() {
        for mix in &cfg.mixes {
            for &seed in &cfg.seeds {
                if let Ok(imgs) = &images[&(mix.clone(), seed)] {
                    for &partition in &cfg.partitions {
                        fingerprints.insert(
                            (mix.clone(), seed, partition),
                            config_fingerprint(&crate::warmup::canonical_config_for(
                                imgs, seed, partition,
                            )),
                        );
                    }
                }
            }
        }
    }
    let cell_key = |spec: &Spec| -> Option<u64> {
        let fp = fingerprints.get(&(spec.mix.to_string(), spec.seed, spec.partition))?;
        Some(journal_key(
            *fp,
            &[
                "ablation-study",
                spec.fetch,
                spec.window.name(),
                spec.ablation.map_or("baseline", |a| a.name()),
            ],
            &[cfg.cycles, cfg.warmup],
        ))
    };

    // Journal prescan (see `run_study` — same resume contract).
    let mut journaled: Vec<Option<SimReport>> = (0..specs.len()).map(|_| None).collect();
    let mut degraded: Vec<Degradation> = Vec::new();
    if let Some(journal) = &journal {
        for (i, spec) in specs.iter().enumerate() {
            let Some(key) = cell_key(spec) else { continue };
            match journal.load(key, i as u64) {
                Ok(found) => journaled[i] = found,
                Err(detail) => degraded.push(Degradation {
                    key: cell_label(spec),
                    reason: DegradeReason::JournalRead,
                    detail: format!("{detail}; cell re-run"),
                }),
            }
        }
    }

    // Each warm cell forks from a checkpoint warmed under the cell's OWN
    // fetch policy and ablation set — an ablation changes the machine
    // itself, so warming it any other way would contaminate the
    // attribution numbers (the warmed state of a perfect-I-cache machine
    // is not the warmed state of the baseline). Within one run every warm
    // cell's key is therefore unique; the sharing win is across repeat
    // sweeps, via the `--checkpoint-dir` cache. Cold cells never warm.
    // Every cell is isolated behind `catch_unwind` at the scheduler
    // boundary, so one cell's fault never takes down the matrix.
    struct Done {
        cell: AblationCell,
        from_journal: bool,
        warmed: bool,
        degradations: Vec<Degradation>,
    }
    let outcomes = smt_stats::sched::work_steal_map_catch(specs.len(), cfg.jobs, |i| {
        let spec = &specs[i];
        #[cfg(feature = "fault-inject")]
        smt_stats::faults::panic_point("cell", i as u64);
        let mix_images = match &images[&(spec.mix.to_string(), spec.seed)] {
            Ok(imgs) => imgs,
            Err(e) => return Err(CellError::workload(e.clone())),
        };
        if let Some(report) = &journaled[i] {
            return Ok(Done {
                cell: AblationCell {
                    ablation: spec.ablation.map(|a| a.name().to_string()),
                    fetch: report.fetch_policy.clone(),
                    partition: spec.partition,
                    mix: spec.mix.to_string(),
                    seed: spec.seed,
                    window: spec.window,
                    report: report.clone(),
                },
                from_journal: true,
                warmed: false,
                degradations: Vec::new(),
            });
        }
        let ablations = match spec.ablation {
            Some(a) => Ablations::only(a),
            None => Ablations::none(),
        };
        let build = || {
            mix_images
                .apply(SimConfig::new())
                .with_seed(spec.seed)
                .with_fetch(fetch_policy_by_name(spec.fetch).expect("validated"))
                .with_partition(spec.partition)
                .with_ablations(ablations)
        };
        let mut degradations = Vec::new();
        let (report, warmed) = match spec.window {
            Window::Cold => (build().build().run(cfg.cycles), false),
            Window::Warm => {
                let (checkpoint, computed) = if cfg.share_warmup {
                    let stem = format!(
                        "warm-{}-s{}-p{}.{}-f{}-a{}",
                        crate::warmup::sanitize_stem(spec.mix),
                        spec.seed,
                        spec.partition.threads_per_cycle,
                        spec.partition.insts_per_thread,
                        spec.fetch,
                        spec.ablation.map_or("baseline", |a| a.name()),
                    );
                    let warm = crate::warmup::warm_checkpoint_under(
                        build,
                        &stem,
                        cfg.warmup,
                        cfg.checkpoint_dir.as_deref(),
                    );
                    degradations.extend(warm.degradations);
                    (warm.checkpoint, warm.computed)
                } else {
                    let bytes = crate::warmup::compute_checkpoint_under(build(), cfg.warmup);
                    (std::sync::Arc::new(bytes), true)
                };
                let report = crate::warmup::try_fork_cell(build(), &checkpoint, cfg.cycles)
                    .map_err(|e| CellError::checkpoint(e.to_string()))?;
                (report, computed)
            }
        };
        if let (Some(journal), Some(key)) = (&journal, cell_key(spec)) {
            if let Err(e) = journal.store(key, i as u64, &report) {
                degradations.push(Degradation {
                    key: cell_label(spec),
                    reason: DegradeReason::JournalWrite,
                    detail: format!("store failed: {e}; result not durable"),
                });
            }
        }
        Ok(Done {
            cell: AblationCell {
                ablation: spec.ablation.map(|a| a.name().to_string()),
                fetch: report.fetch_policy.clone(),
                partition: spec.partition,
                mix: spec.mix.to_string(),
                seed: spec.seed,
                window: spec.window,
                report,
            },
            from_journal: false,
            warmed,
            degradations,
        })
    });

    let mut cells = Vec::new();
    let mut failed = Vec::new();
    let mut warmups_performed = 0;
    let mut journal_loaded = 0;
    for (spec, outcome) in specs.iter().zip(outcomes) {
        let flat = match outcome {
            Ok(inner) => inner,
            Err(panic_msg) => Err(CellError::panic(panic_msg)),
        };
        match flat {
            Ok(done) => {
                if done.from_journal {
                    journal_loaded += 1;
                }
                if done.warmed {
                    warmups_performed += 1;
                }
                degraded.extend(done.degradations);
                cells.push(done.cell);
            }
            Err(error) => failed.push(FailedAblationCell {
                ablation: spec.ablation.map(|a| a.name().to_string()),
                fetch: crate::study::canonical_fetch_name(spec.fetch),
                partition: spec.partition,
                mix: spec.mix.to_string(),
                seed: spec.seed,
                window: spec.window,
                error,
            }),
        }
    }
    Ok(AblationStudy {
        config: cfg.clone(),
        cells,
        failed,
        degraded,
        warmups_performed,
        journal_loaded,
    })
}

impl AblationStudy {
    /// The baseline (no-ablation) cell sharing `cell`'s fetch policy,
    /// partition, mix, seed and window.
    pub fn baseline_for(&self, cell: &AblationCell) -> Option<&AblationCell> {
        self.cells.iter().find(|c| {
            c.ablation.is_none()
                && c.fetch == cell.fetch
                && c.partition == cell.partition
                && c.mix == cell.mix
                && c.seed == cell.seed
                && c.window == cell.window
        })
    }

    /// The cell's IPC delta against its baseline (`0.0` for baseline
    /// cells; `None` when the baseline was not part of the sweep).
    pub fn delta_vs_baseline(&self, cell: &AblationCell) -> Option<f64> {
        let base = self.baseline_for(cell)?;
        Some(cell.report.total_ipc() - base.report.total_ipc())
    }

    /// The cell's loss-bucket shifts against its baseline (zero for
    /// baseline cells).
    pub fn loss_shift(&self, cell: &AblationCell) -> Option<LossShift> {
        let base = self.baseline_for(cell)?;
        let d = |a: u64, b: u64| a as i64 - b as i64;
        Some(LossShift {
            lost_icache: d(cell.report.fetch.lost_icache, base.report.fetch.lost_icache),
            lost_frontend_full: d(
                cell.report.fetch.lost_frontend_full,
                base.report.fetch.lost_frontend_full,
            ),
            wrong_path_fetch_conflicts: d(
                cell.report.fetch.wrong_path_fetch_conflicts,
                base.report.fetch.wrong_path_fetch_conflicts,
            ),
        })
    }

    fn cells_of<'a>(
        &'a self,
        ablation: Option<&'a str>,
        window: Window,
    ) -> impl Iterator<Item = &'a AblationCell> + 'a {
        self.cells
            .iter()
            .filter(move |c| c.ablation.as_deref() == ablation && c.window == window)
    }

    /// Mean total IPC over the cells with the given ablation (or the
    /// baseline for `None`) and window; `None` when no such cells ran.
    pub fn mean_ipc(&self, ablation: Option<&str>, window: Window) -> Option<f64> {
        mean(
            self.cells_of(ablation, window)
                .map(|c| c.report.total_ipc()),
        )
    }

    /// Mean IPC delta (ablation − baseline) over matching cell pairs.
    pub fn mean_delta(&self, ablation: &str, window: Window) -> Option<f64> {
        mean(
            self.cells_of(Some(ablation), window)
                .filter_map(|c| self.delta_vs_baseline(c)),
        )
    }

    /// The ICOUNT-vs-RR style fetch-policy gap: mean IPC of `fetch_hi`
    /// minus mean IPC of `fetch_lo` over the cells with the given ablation
    /// (baseline for `None`) and window.
    pub fn gap(
        &self,
        fetch_hi: &str,
        fetch_lo: &str,
        ablation: Option<&str>,
        window: Window,
    ) -> Option<f64> {
        let hi = mean(
            self.cells_of(ablation, window)
                .filter(|c| c.fetch == fetch_hi)
                .map(|c| c.report.total_ipc()),
        )?;
        let lo = mean(
            self.cells_of(ablation, window)
                .filter(|c| c.fetch == fetch_lo)
                .map(|c| c.report.total_ipc()),
        )?;
        Some(hi - lo)
    }

    /// The wrong-path bank-arbitration cost against the paper's ~2% claim:
    /// the mean relative IPC change (in percent) of the warm-window
    /// `exempt_wrong_path_bank_arbitration` cells on the standard mix
    /// against their baselines. Positive means the exemption *helped*,
    /// i.e. the contention costs that much. `None` when the sweep did not
    /// cover the required cells.
    pub fn wrong_path_claim(&self) -> Option<f64> {
        let name = Ablation::ExemptWrongPathFromBankArbitration.name();
        mean(
            self.cells_of(Some(name), Window::Warm)
                .filter(|c| c.mix == "standard")
                .filter_map(|c| {
                    let base = self.baseline_for(c)?.report.total_ipc();
                    if base == 0.0 {
                        return None;
                    }
                    Some((c.report.total_ipc() - base) / base * 100.0)
                }),
        )
    }

    /// A per-(ablation, window) mean-IPC table, one column per fetch
    /// policy, baseline rows first.
    pub fn summary_table(&self) -> TextTable {
        let mut fetches: Vec<String> = Vec::new();
        for c in &self.cells {
            if !fetches.contains(&c.fetch) {
                fetches.push(c.fetch.clone());
            }
        }
        let mut table = TextTable::new();
        let mut header = vec!["ablation/window".to_string()];
        header.extend(fetches.iter().cloned());
        header.push("Δ vs baseline".to_string());
        table.header(header);
        let mut axis: Vec<Option<String>> = vec![None];
        axis.extend(self.config.ablations.iter().cloned().map(Some));
        for ablation in &axis {
            for window in Window::ALL {
                let label = format!("{}/{window}", ablation.as_deref().unwrap_or("baseline"));
                let mut row = vec![label];
                for fetch in &fetches {
                    let ipc = mean(
                        self.cells_of(ablation.as_deref(), window)
                            .filter(|c| c.fetch == *fetch)
                            .map(|c| c.report.total_ipc()),
                    );
                    row.push(match ipc {
                        Some(ipc) => format!("{ipc:.2}"),
                        None => "-".to_string(),
                    });
                }
                row.push(match ablation.as_deref() {
                    Some(a) => match self.mean_delta(a, window) {
                        Some(d) => format!("{d:+.3}"),
                        None => "-".to_string(),
                    },
                    None => "-".to_string(),
                });
                table.row(row);
            }
        }
        table
    }

    /// The versioned machine-readable document (`kind: "smt-exp-study"`,
    /// `study: "ablation"`; see the crate docs for the schema).
    /// `smt_exp --study ablation --json out.json` writes exactly this,
    /// pretty-rendered.
    pub fn to_json(&self) -> Json {
        let cfg = &self.config;
        let config = Json::object([
            ("cycles", Json::from(cfg.cycles)),
            ("warmup_cycles", Json::from(cfg.warmup)),
            (
                "fetch_policies",
                Json::array(cfg.fetch_policies.iter().map(String::as_str)),
            ),
            (
                "ablations",
                Json::array(cfg.ablations.iter().map(String::as_str)),
            ),
            (
                "partitions",
                Json::array(cfg.partitions.iter().map(|p| p.to_string())),
            ),
            ("mixes", Json::array(cfg.mixes.iter().map(String::as_str))),
            ("seeds", Json::array(cfg.seeds.iter().copied())),
            ("windows", Json::array(Window::ALL.iter().map(|w| w.name()))),
        ]);
        let cells = Json::array(self.cells.iter().map(|c| {
            let shift = self.loss_shift(c);
            Json::object([
                (
                    "ablation",
                    match &c.ablation {
                        Some(a) => Json::from(a.clone()),
                        None => Json::Null,
                    },
                ),
                ("fetch", Json::from(c.fetch.clone())),
                ("partition", Json::from(c.partition.to_string())),
                ("mix", Json::from(c.mix.clone())),
                ("seed", Json::from(c.seed)),
                ("window", Json::from(c.window.name())),
                ("total_ipc", Json::from(c.report.total_ipc())),
                (
                    "delta_vs_baseline",
                    match self.delta_vs_baseline(c) {
                        Some(d) => Json::from(d),
                        None => Json::Null,
                    },
                ),
                (
                    "loss_shift",
                    match shift {
                        Some(s) => Json::object([
                            ("lost_icache", Json::from(s.lost_icache)),
                            ("lost_frontend_full", Json::from(s.lost_frontend_full)),
                            (
                                "wrong_path_fetch_conflicts",
                                Json::from(s.wrong_path_fetch_conflicts),
                            ),
                        ]),
                        None => Json::Null,
                    },
                ),
                ("report", c.report.to_json()),
            ])
        }));
        let ablation_summary = Json::array(
            cfg.ablations
                .iter()
                .flat_map(|a| Window::ALL.into_iter().map(move |w| (a, w)))
                .map(|(ablation, window)| {
                    let shift_means = |f: fn(&LossShift) -> i64| {
                        mean(
                            self.cells_of(Some(ablation), window)
                                .filter_map(|c| self.loss_shift(c))
                                .map(|s| f(&s) as f64),
                        )
                        .unwrap_or(0.0)
                    };
                    Json::object([
                        ("ablation", Json::from(ablation.as_str())),
                        ("window", Json::from(window.name())),
                        (
                            "mean_ipc",
                            Json::from(self.mean_ipc(Some(ablation), window).unwrap_or(0.0)),
                        ),
                        (
                            "mean_baseline_ipc",
                            Json::from(self.mean_ipc(None, window).unwrap_or(0.0)),
                        ),
                        (
                            "mean_delta_ipc",
                            Json::from(self.mean_delta(ablation, window).unwrap_or(0.0)),
                        ),
                        (
                            "mean_loss_shift",
                            Json::object([
                                ("lost_icache", Json::from(shift_means(|s| s.lost_icache))),
                                (
                                    "lost_frontend_full",
                                    Json::from(shift_means(|s| s.lost_frontend_full)),
                                ),
                                (
                                    "wrong_path_fetch_conflicts",
                                    Json::from(shift_means(|s| s.wrong_path_fetch_conflicts)),
                                ),
                            ]),
                        ),
                    ])
                }),
        );
        let gap_json = |ablation: Option<&str>, window: Window| match self
            .gap("ICOUNT", "RR", ablation, window)
        {
            Some(g) => Json::from(g),
            None => Json::Null,
        };
        let perfect_icache = Ablation::PerfectICache.name();
        let infinite_queues = Ablation::InfiniteFrontendQueues.name();
        Json::object([
            ("schema_version", Json::from(JSON_SCHEMA_VERSION)),
            ("kind", Json::from("smt-exp-study")),
            ("study", Json::from("ablation")),
            ("config", config),
            ("cells", cells),
            (
                "failed_cells",
                Json::array(self.failed.iter().map(|f| {
                    Json::object([
                        (
                            "ablation",
                            match &f.ablation {
                                Some(a) => Json::from(a.clone()),
                                None => Json::Null,
                            },
                        ),
                        ("fetch", Json::from(f.fetch.as_str())),
                        ("partition", Json::from(f.partition.to_string())),
                        ("mix", Json::from(f.mix.as_str())),
                        ("seed", Json::from(f.seed)),
                        ("window", Json::from(f.window.name())),
                        ("error", f.error.to_json()),
                    ])
                })),
            ),
            (
                "degraded_cells",
                Json::array(self.degraded.iter().map(Degradation::to_json)),
            ),
            (
                "summary",
                Json::object([
                    ("ablations", ablation_summary),
                    (
                        "wrong_path_claim",
                        Json::object([
                            ("paper_claim_pct", Json::from(PAPER_WRONG_PATH_CLAIM_PCT)),
                            ("window", Json::from("warm")),
                            ("mix", Json::from("standard")),
                            (
                                "measured_delta_pct",
                                match self.wrong_path_claim() {
                                    Some(d) => Json::from(d),
                                    None => Json::Null,
                                },
                            ),
                        ]),
                    ),
                    (
                        "gap_decomposition",
                        Json::object([
                            ("fetch_hi", Json::from("ICOUNT")),
                            ("fetch_lo", Json::from("RR")),
                            ("cold_gap_baseline", gap_json(None, Window::Cold)),
                            ("warm_gap_baseline", gap_json(None, Window::Warm)),
                            (
                                "cold_gap_perfect_icache",
                                gap_json(Some(perfect_icache), Window::Cold),
                            ),
                            (
                                "warm_gap_infinite_frontend_queues",
                                gap_json(Some(infinite_queues), Window::Warm),
                            ),
                        ]),
                    ),
                ]),
            ),
        ])
    }
}

fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ablation_study() -> AblationStudyConfig {
        AblationStudyConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            ablations: vec![
                "perfect_icache".into(),
                "exempt_wrong_path_bank_arbitration".into(),
            ],
            mixes: vec!["mixed4".into()],
            seeds: vec![42],
            cycles: 500,
            warmup: 200,
            jobs: 2,
            ..AblationStudyConfig::default()
        }
    }

    #[test]
    fn default_config_is_valid_and_sized() {
        let cfg = AblationStudyConfig::default();
        cfg.validate().unwrap();
        // (1 baseline + 4 ablations) × 2 fetch × 3 partitions × 3 mixes
        // × 3 seeds × 2 windows.
        assert_eq!(cfg.cell_count(), 540);
        assert!(cfg.seeds.contains(&7), "widened matrix carries seed 7");
        assert!(
            cfg.partitions.contains(&FetchPartition::new(2, 2))
                && cfg.partitions.contains(&FetchPartition::new(4, 4)),
            "widened matrix carries the 2.2/4.4 partitions"
        );
    }

    #[test]
    fn validate_rejects_unknown_and_degenerate() {
        let cfg = AblationStudyConfig {
            ablations: vec!["nonesuch".into()],
            ..AblationStudyConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("unknown ablation"));
        let cfg = AblationStudyConfig {
            warmup: 0,
            ..AblationStudyConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = AblationStudyConfig {
            fetch_policies: vec!["nonesuch".into()],
            ..AblationStudyConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn tiny_study_runs_all_cells_with_baselines() {
        let cfg = tiny_ablation_study();
        let study = run_ablation_study(&cfg).unwrap();
        assert_eq!(study.cells.len(), cfg.cell_count());
        for c in &study.cells {
            assert_eq!(c.report.cycles, cfg.cycles);
            match c.window {
                Window::Cold => assert_eq!(c.report.warmup_cycles, 0),
                Window::Warm => assert_eq!(c.report.warmup_cycles, cfg.warmup),
            }
            assert!(c.report.total_committed() > 0, "cell made no progress");
            let d = study.delta_vs_baseline(c).expect("baseline in sweep");
            if c.ablation.is_none() {
                assert_eq!(d, 0.0);
                assert!(c.report.ablations.is_empty());
            } else {
                assert_eq!(
                    c.report.ablations,
                    vec![c.ablation.clone().unwrap()],
                    "the report must self-describe its ablation"
                );
            }
        }
        // Perfect I-cache cells really have a perfect I-cache.
        for c in study.cells_of(Some("perfect_icache"), Window::Cold) {
            assert_eq!(c.report.mem.icache.misses, 0);
            assert_eq!(c.report.fetch.lost_icache, 0);
        }
    }

    #[test]
    fn worker_count_never_leaks_into_the_ablation_document() {
        // Same scheduler-determinism property as the issue study: the
        // `--study ablation` document must not change bytes across
        // worker counts, including an oversubscribed jobs=8.
        let base = tiny_ablation_study();
        let reference = run_ablation_study(&AblationStudyConfig {
            jobs: 1,
            ..base.clone()
        })
        .unwrap()
        .to_json()
        .render_pretty();
        for jobs in [2, 8] {
            let doc = run_ablation_study(&AblationStudyConfig {
                jobs,
                ..base.clone()
            })
            .unwrap()
            .to_json()
            .render_pretty();
            assert_eq!(
                doc, reference,
                "jobs={jobs} perturbed the ablation document bytes"
            );
        }
    }

    #[test]
    fn checkpoint_and_cold_warmup_paths_are_byte_identical() {
        let dir =
            std::env::temp_dir().join(format!("smt-exp-ablation-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = AblationStudyConfig {
            checkpoint_dir: Some(dir.clone()),
            ..tiny_ablation_study()
        };
        let first = run_ablation_study(&cfg).unwrap();
        let cold = run_ablation_study(&AblationStudyConfig {
            share_warmup: false,
            ..cfg.clone()
        })
        .unwrap();
        // Each warm cell warms under its own configuration, so a cold
        // cache computes one warmup per warm cell in both modes …
        assert_eq!(first.warmups_performed, cfg.cell_count() / 2);
        assert_eq!(cold.warmups_performed, cfg.cell_count() / 2);
        assert_eq!(
            first.to_json().render_pretty(),
            cold.to_json().render_pretty(),
            "the checkpoint path changed the ablation study's results"
        );
        // … and a repeat sweep is served entirely from the cache, with
        // identical results.
        let repeat = run_ablation_study(&cfg).unwrap();
        assert_eq!(repeat.warmups_performed, 0);
        assert_eq!(
            repeat.to_json().render_pretty(),
            first.to_json().render_pretty()
        );
        // Warm cells carry the provenance flag; cold cells never warmed.
        for c in &first.cells {
            match c.window {
                Window::Warm => assert!(c.report.restored_from_checkpoint),
                Window::Cold => assert!(!c.report.restored_from_checkpoint),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_resume_is_byte_identical_across_windows() {
        let dir =
            std::env::temp_dir().join(format!("smt-exp-ablation-journal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let plain = tiny_ablation_study();
        let cfg = AblationStudyConfig {
            journal: Some(dir.clone()),
            ..plain.clone()
        };
        let reference = run_ablation_study(&plain)
            .unwrap()
            .to_json()
            .render_pretty();
        let first = run_ablation_study(&cfg).unwrap();
        assert_eq!(first.journal_loaded, 0);
        assert_eq!(first.to_json().render_pretty(), reference);
        // Cold AND warm cells are journaled, so a resume runs nothing.
        let resumed = run_ablation_study(&cfg).unwrap();
        assert_eq!(resumed.journal_loaded, cfg.cell_count());
        assert_eq!(resumed.warmups_performed, 0);
        assert!(resumed.degraded.is_empty());
        assert_eq!(resumed.to_json().render_pretty(), reference);
        // A partial journal re-runs only the missing cells.
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for name in names.iter().take(names.len() / 2) {
            std::fs::remove_file(dir.join(name)).unwrap();
        }
        let partial = run_ablation_study(&cfg).unwrap();
        assert_eq!(partial.journal_loaded, names.len() - names.len() / 2);
        assert_eq!(partial.to_json().render_pretty(), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn study_json_round_trips_and_carries_summary() {
        let study = run_ablation_study(&tiny_ablation_study()).unwrap();
        let text = study.to_json().render_pretty();
        let back = Json::parse(&text).expect("ablation JSON must parse");
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(JSON_SCHEMA_VERSION)
        );
        assert_eq!(back.get("study").and_then(Json::as_str), Some("ablation"));
        let cells = back.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(cells.len(), study.cells.len());
        for list in ["failed_cells", "degraded_cells"] {
            let entries = back.get(list).and_then(Json::as_array).unwrap();
            assert!(entries.is_empty(), "{list} not empty on a fault-free run");
        }
        let summary = back.get("summary").unwrap();
        let gaps = summary.get("gap_decomposition").unwrap();
        assert!(gaps
            .get("cold_gap_baseline")
            .and_then(Json::as_f64)
            .is_some());
        assert!(gaps
            .get("cold_gap_perfect_icache")
            .and_then(Json::as_f64)
            .is_some());
        let claim = summary.get("wrong_path_claim").unwrap();
        assert_eq!(
            claim.get("paper_claim_pct").and_then(Json::as_f64),
            Some(PAPER_WRONG_PATH_CLAIM_PCT)
        );
        // mixed4 has no standard-mix cells, so the claim is null here …
        assert!(matches!(claim.get("measured_delta_pct"), Some(Json::Null)));
        // … and the summary table still renders every row.
        let table = study.summary_table().to_string();
        assert!(table.contains("baseline/cold"));
        assert!(table.contains("perfect_icache/warm"));
    }
}

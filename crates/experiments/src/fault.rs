//! Typed per-cell failures and graceful-degradation records.
//!
//! Before this module a broken cell — a panic inside the simulator, an
//! unreadable `riscv:`/`trace:` workload file, a checkpoint that no longer
//! matches its machine — aborted the whole sweep, discarding every healthy
//! cell's work. The sweep runners now contain such faults: a failing cell
//! becomes a [`CellError`] in the study's `failed_cells` list and every
//! other cell's result stays **byte-identical** to a fault-free run.
//!
//! Non-fatal trouble — a corrupt checkpoint-cache entry that forced a
//! recompute, a journal entry that could not be written — is *degradation*,
//! not failure: the affected cell still produces its exact result, only
//! slower or less durably. Those events are recorded as [`Degradation`]
//! entries in the study's `degraded_cells` list (replacing the former
//! fire-and-forget `eprintln!` warnings), so an operator can see from the
//! result document alone that a sweep limped.

use std::fmt;

use smt_stats::json::Json;

/// Why a cell failed, as a stable machine-readable category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellErrorKind {
    /// The cell's simulation panicked; the panic was caught at the
    /// scheduler boundary and the message preserved.
    Panic,
    /// The cell's workload could not be built — an unreadable or malformed
    /// `riscv:`/`trace:` file, typically.
    Workload,
    /// A warmed-state checkpoint the cell depends on could not be produced
    /// or restored.
    Checkpoint,
    /// An I/O operation on the cell's behalf failed even after retries.
    Io,
}

impl CellErrorKind {
    /// The stable tag written to the JSON document.
    pub fn tag(self) -> &'static str {
        match self {
            CellErrorKind::Panic => "panic",
            CellErrorKind::Workload => "workload",
            CellErrorKind::Checkpoint => "checkpoint",
            CellErrorKind::Io => "io",
        }
    }
}

/// One contained cell failure: a category plus the underlying message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// The failure category.
    pub kind: CellErrorKind,
    /// Human-readable detail (panic message, loader error, I/O error).
    pub message: String,
}

impl CellError {
    /// A caught-panic failure.
    pub fn panic(message: impl Into<String>) -> CellError {
        CellError {
            kind: CellErrorKind::Panic,
            message: message.into(),
        }
    }

    /// A workload-construction failure.
    pub fn workload(message: impl Into<String>) -> CellError {
        CellError {
            kind: CellErrorKind::Workload,
            message: message.into(),
        }
    }

    /// A checkpoint produce/restore failure.
    pub fn checkpoint(message: impl Into<String>) -> CellError {
        CellError {
            kind: CellErrorKind::Checkpoint,
            message: message.into(),
        }
    }

    /// A post-retry I/O failure.
    pub fn io(message: impl Into<String>) -> CellError {
        CellError {
            kind: CellErrorKind::Io,
            message: message.into(),
        }
    }

    /// The `{"kind": ..., "message": ...}` fragment embedded in a
    /// `failed_cells` entry.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("kind", Json::from(self.kind.tag())),
            ("message", Json::from(self.message.clone())),
        ])
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.tag(), self.message)
    }
}

impl std::error::Error for CellError {}

/// Why a sweep degraded (kept its exact results, but lost speed or
/// durability), as a stable machine-readable reason tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// A `--checkpoint-dir` cache entry could not be read; the warmup was
    /// recomputed.
    CheckpointCacheRead,
    /// A `--checkpoint-dir` cache entry existed but failed validation
    /// (bad magic, checksum, fingerprint or cycle count); the warmup was
    /// recomputed.
    CheckpointCacheInvalid,
    /// A freshly computed checkpoint could not be written back to the
    /// `--checkpoint-dir` cache; the sweep continued uncached.
    CheckpointCacheWrite,
    /// A `--journal` entry existed but could not be read or failed
    /// validation; the cell was re-run.
    JournalRead,
    /// A completed cell's result could not be appended to the `--journal`
    /// directory; the result is in the document but not durable.
    JournalWrite,
}

impl DegradeReason {
    /// The stable tag written to the JSON document.
    pub fn tag(self) -> &'static str {
        match self {
            DegradeReason::CheckpointCacheRead => "checkpoint_cache_read_failed",
            DegradeReason::CheckpointCacheInvalid => "checkpoint_cache_invalid",
            DegradeReason::CheckpointCacheWrite => "checkpoint_cache_write_failed",
            DegradeReason::JournalRead => "journal_read_failed",
            DegradeReason::JournalWrite => "journal_write_failed",
        }
    }
}

/// One graceful-degradation event: which artifact degraded, why, and the
/// underlying detail. Collected in deterministic order and written to the
/// study document's `degraded_cells` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// What degraded — a cache entry file name or a cell label.
    pub key: String,
    /// The stable reason category.
    pub reason: DegradeReason,
    /// Human-readable detail (the I/O or validation error).
    pub detail: String,
}

impl Degradation {
    /// One `degraded_cells` entry.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("key", Json::from(self.key.clone())),
            ("reason", Json::from(self.reason.tag())),
            ("detail", Json::from(self.detail.clone())),
        ])
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.key, self.reason.tag(), self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable_and_distinct() {
        let kinds = [
            CellErrorKind::Panic,
            CellErrorKind::Workload,
            CellErrorKind::Checkpoint,
            CellErrorKind::Io,
        ];
        let tags: Vec<&str> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(tags, ["panic", "workload", "checkpoint", "io"]);
        let reasons = [
            DegradeReason::CheckpointCacheRead,
            DegradeReason::CheckpointCacheInvalid,
            DegradeReason::CheckpointCacheWrite,
            DegradeReason::JournalRead,
            DegradeReason::JournalWrite,
        ];
        let mut tags: Vec<&str> = reasons.iter().map(|r| r.tag()).collect();
        let n = tags.len();
        tags.dedup();
        assert_eq!(tags.len(), n, "reason tags must be distinct");
    }

    #[test]
    fn json_fragments_carry_kind_and_message() {
        let e = CellError::workload("no such file: a.elf");
        let doc = e.to_json();
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("workload"),
            "{doc:?}"
        );
        assert_eq!(
            doc.get("message").and_then(Json::as_str),
            Some("no such file: a.elf")
        );
        assert_eq!(e.to_string(), "workload: no such file: a.elf");

        let d = Degradation {
            key: "cell-0000000000000001.smtj".to_string(),
            reason: DegradeReason::JournalRead,
            detail: "bad magic".to_string(),
        };
        let doc = d.to_json();
        assert_eq!(
            doc.get("reason").and_then(Json::as_str),
            Some("journal_read_failed")
        );
        assert!(d.to_string().contains("journal_read_failed"));
    }
}

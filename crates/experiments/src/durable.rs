//! Durable file I/O for the sweep's cache and journal: bounded-backoff
//! retries for transient errors, and atomic (temp-file + rename)
//! publication so a reader never observes a torn write.
//!
//! The checkpoint cache and the result journal are written *while* a sweep
//! runs and read by *later* invocations — including an `smt_exp` process
//! resuming after its predecessor was SIGKILLed mid-write. Two disciplines
//! keep that safe:
//!
//! * **Retry transient errors.** `EINTR`-class failures
//!   ([`io::ErrorKind::Interrupted`], [`WouldBlock`](io::ErrorKind::WouldBlock),
//!   [`TimedOut`](io::ErrorKind::TimedOut)) get a few retries with a short
//!   doubling backoff; anything else (or exhausted retries) surfaces
//!   unchanged for the caller to degrade on.
//! * **Publish atomically.** Files appear under their final name only via
//!   `rename(2)`, which is atomic on POSIX filesystems: a crash mid-write
//!   leaves a stale `.tmp` file (ignored by every reader), never a
//!   half-written cache or journal entry under the real name.
//!
//! Each helper takes an injection `site`/`probe` pair: with the
//! `fault-inject` feature the retried operation first consults
//! [`smt_stats::faults`], so tests can make exactly the Nth write at a
//! chosen site fail transiently (proving the retry absorbs it) or hard
//! (proving the typed degradation surfaces). Without the feature the pair
//! compiles to nothing.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Total attempts per operation (one initial try + retries).
const ATTEMPTS: u32 = 4;

/// First backoff; doubles per retry (2 ms, 4 ms, 8 ms).
const FIRST_BACKOFF: Duration = Duration::from_millis(2);

fn transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs `op` up to [`ATTEMPTS`] times, sleeping a doubling backoff between
/// attempts, retrying only [`transient`] error kinds. The last error — or
/// the first non-transient one — is returned unchanged.
pub(crate) fn retry_io<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut backoff = FIRST_BACKOFF;
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if transient(&e) && attempt < ATTEMPTS => {
                std::thread::sleep(backoff);
                backoff *= 2;
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// The probe consulted inside every retried operation. A no-op without the
/// `fault-inject` feature.
fn probe(site: &str, key: u64) -> io::Result<()> {
    #[cfg(feature = "fault-inject")]
    smt_stats::faults::io_point(site, key)?;
    #[cfg(not(feature = "fault-inject"))]
    let _ = (site, key);
    Ok(())
}

/// The temp-file sibling a write is staged under before its rename. The
/// process id keeps concurrent *processes* from clobbering each other's
/// staging files; within one process each target path is written by at
/// most one worker.
fn staging_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!(".{name}.tmp.{}", std::process::id()))
}

/// Whether a directory entry is a staging file left by [`atomic_write`]
/// (possibly by a killed predecessor process). Readers skip these.
pub(crate) fn is_staging_name(name: &str) -> bool {
    name.starts_with('.') && name.contains(".tmp.")
}

/// Writes `bytes` to `path` atomically: create the parent, stage the
/// content under a temp name, `rename` into place. Every step retries
/// transient errors; the staging file is best-effort removed if the
/// rename fails. `site`/`probe_key` name the fault-injection point for the
/// content write.
pub(crate) fn atomic_write(
    path: &Path,
    bytes: &[u8],
    site: &str,
    probe_key: u64,
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            retry_io(|| std::fs::create_dir_all(parent))?;
        }
    }
    let staging = staging_path(path);
    retry_io(|| {
        probe(site, probe_key)?;
        std::fs::write(&staging, bytes)
    })?;
    retry_io(|| std::fs::rename(&staging, path)).inspect_err(|_| {
        let _ = std::fs::remove_file(&staging);
    })
}

/// Reads `path` with transient-error retries and the `site` fault probe.
/// `NotFound` is not transient and surfaces immediately — callers treat it
/// as "no entry", not an error. With the `fault-inject` feature an armed
/// corruption fault at the same site flips one byte of the returned
/// buffer, exercising the caller's validation path.
pub(crate) fn read_file(path: &Path, site: &str, probe_key: u64) -> io::Result<Vec<u8>> {
    #[allow(unused_mut)]
    let mut bytes = retry_io(|| {
        probe(site, probe_key)?;
        std::fs::read(path)
    })?;
    #[cfg(feature = "fault-inject")]
    smt_stats::faults::corrupt_point(site, probe_key, &mut bytes);
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("smt-exp-durable-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn retry_absorbs_transient_errors_within_budget() {
        let tries = AtomicU32::new(0);
        let out = retry_io(|| {
            if tries.fetch_add(1, Ordering::Relaxed) < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(tries.load(Ordering::Relaxed), 4, "3 transient + 1 success");
    }

    #[test]
    fn retry_gives_up_on_hard_and_exhausted_errors() {
        let tries = AtomicU32::new(0);
        let out: io::Result<()> = retry_io(|| {
            tries.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::other("hard"))
        });
        assert!(out.is_err());
        assert_eq!(tries.load(Ordering::Relaxed), 1, "hard errors never retry");

        let tries = AtomicU32::new(0);
        let out: io::Result<()> = retry_io(|| {
            tries.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::new(io::ErrorKind::TimedOut, "always"))
        });
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(tries.load(Ordering::Relaxed), ATTEMPTS);
    }

    #[test]
    fn atomic_write_round_trips_and_leaves_no_staging_files() {
        let dir = tmp_dir("atomic");
        let path = dir.join("nested").join("entry.bin");
        atomic_write(&path, b"payload", "test-write", 0).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| is_staging_name(n))
            .collect();
        assert!(leftovers.is_empty(), "staging files leaked: {leftovers:?}");
        // Overwrites are atomic too.
        atomic_write(&path, b"replaced", "test-write", 0).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"replaced");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staging_names_are_recognized() {
        let staged = staging_path(Path::new("/x/cell-00ff.smtj"));
        let name = staged.file_name().unwrap().to_string_lossy().into_owned();
        assert!(is_staging_name(&name), "{name}");
        assert!(!is_staging_name("cell-00ff.smtj"));
        assert!(!is_staging_name("warm-standard.ckpt"));
    }

    #[test]
    fn read_file_surfaces_not_found_immediately() {
        let missing = tmp_dir("missing").join("nope.bin");
        let err = read_file(&missing, "test-read", 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}

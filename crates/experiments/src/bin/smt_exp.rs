fn main(){}

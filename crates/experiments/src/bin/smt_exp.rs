//! `smt_exp` — the policy-comparison CLI.
//!
//! ```text
//! smt_exp --fetch icount --partition 2.8 --threads 8 --cycles 20000
//! smt_exp --fetch all --partition all            # the full Section-4 matrix
//! smt_exp --study issue --json out.json          # the Section-5 issue study
//! ```

use std::process::ExitCode;

use smt_experiments::ablation::{run_ablation_study, Window};
use smt_experiments::fault::Degradation;
use smt_experiments::study::run_study;
use smt_experiments::warmup::{run_checkpoint_verify, run_checkpoint_write};
use smt_experiments::{matrix_to_json, parse_cli, run_matrix, Command, USAGE};

/// Prints the sweep's fault/degradation summary and returns whether any
/// cell failed (a nonzero-exit condition — partial results are still
/// printed and written, but the run must not look clean).
fn report_faults(
    journal_loaded: usize,
    degraded: &[Degradation],
    failed: &[(String, String)],
) -> bool {
    if journal_loaded > 0 {
        println!("journal: resumed {journal_loaded} completed cell(s)");
    }
    for d in degraded {
        eprintln!("degraded: {d}");
    }
    if !failed.is_empty() {
        eprintln!("{} cell(s) FAILED:", failed.len());
        for (label, error) in failed {
            eprintln!("  {label}: {error}");
        }
    }
    !failed.is_empty()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_cli(&args) {
        Ok(cmd) => cmd,
        Err(msg) if msg == USAGE => {
            println!("{msg}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        Command::Matrix(cfg) => {
            println!(
                "SMT fetch/issue policy comparison — {} threads, {} cycles (+{} warmup), \
                 seed {} ({} issue)",
                cfg.threads, cfg.cycles, cfg.warmup, cfg.seed, cfg.issue_policy
            );
            println!();
            let (table, reports) = run_matrix(&cfg);
            println!("total IPC (committed instructions per cycle):");
            println!("{table}");
            if cfg.verbose {
                for report in &reports {
                    println!("{report}");
                    println!();
                }
            }
            if let Some(path) = &cfg.json {
                if let Err(e) = std::fs::write(path, matrix_to_json(&cfg, &reports).render_pretty())
                {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
        }
        Command::Study { cfg, json } => {
            println!(
                "Section-5 issue-policy study — {} cells ({} issue × {} fetch × {} partition \
                 × {} mix × {} seed), {} cycles each (+{} warmup)",
                cfg.cell_count(),
                cfg.issue_policies.len(),
                cfg.fetch_policies.len(),
                cfg.partitions.len(),
                cfg.mixes.len(),
                cfg.seeds.len(),
                cfg.cycles,
                cfg.warmup,
            );
            println!();
            let study = match run_study(&cfg) {
                Ok(study) => study,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            };
            println!("total IPC by issue policy:");
            println!("{}", study.summary_table());
            for (name, ipc) in study.mean_ipc_by_issue() {
                println!("  {name:<13} mean {ipc:.3} IPC");
            }
            println!(
                "issue-policy IPC spread {:.3} vs fetch-policy IPC spread {:.3}",
                study.issue_ipc_spread(),
                study.fetch_ipc_spread()
            );
            let failed: Vec<(String, String)> = study
                .failed
                .iter()
                .map(|f| {
                    (
                        format!(
                            "{}/{}/{}/{}/s{}",
                            f.fetch, f.issue, f.partition, f.mix, f.seed
                        ),
                        f.error.to_string(),
                    )
                })
                .collect();
            let any_failed = report_faults(study.journal_loaded, &study.degraded, &failed);
            if let Some(path) = json {
                if let Err(e) = std::fs::write(&path, study.to_json().render_pretty()) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
            if any_failed {
                return ExitCode::FAILURE;
            }
        }
        Command::Ablation { cfg, json } => {
            println!(
                "Mechanism-ablation study — {} cells ((1 baseline + {} ablations) × {} fetch \
                 × {} partition × {} mix × {} seed × cold/warm), {} cycles each \
                 (warm window behind {} warmup)",
                cfg.cell_count(),
                cfg.ablations.len(),
                cfg.fetch_policies.len(),
                cfg.partitions.len(),
                cfg.mixes.len(),
                cfg.seeds.len(),
                cfg.cycles,
                cfg.warmup,
            );
            println!();
            let study = match run_ablation_study(&cfg) {
                Ok(study) => study,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            };
            println!("mean IPC by ablation and window:");
            println!("{}", study.summary_table());
            if let Some(pct) = study.wrong_path_claim() {
                println!(
                    "wrong-path bank-arbitration cost (standard mix, warm): {pct:+.3}% IPC \
                     (paper claims ~2%)"
                );
            }
            for (label, ablation, window) in [
                ("cold gap, baseline", None, Window::Cold),
                (
                    "cold gap, perfect_icache",
                    Some("perfect_icache"),
                    Window::Cold,
                ),
                ("warm gap, baseline", None, Window::Warm),
                (
                    "warm gap, infinite_frontend_queues",
                    Some("infinite_frontend_queues"),
                    Window::Warm,
                ),
            ] {
                if let Some(gap) = study.gap("ICOUNT", "RR", ablation, window) {
                    println!("ICOUNT-vs-RR {label}: {gap:+.3} IPC");
                }
            }
            let failed: Vec<(String, String)> = study
                .failed
                .iter()
                .map(|f| {
                    (
                        format!(
                            "{}/{}/{}/{}/{}/s{}",
                            f.ablation.as_deref().unwrap_or("baseline"),
                            f.fetch,
                            f.window,
                            f.partition,
                            f.mix,
                            f.seed
                        ),
                        f.error.to_string(),
                    )
                })
                .collect();
            let any_failed = report_faults(study.journal_loaded, &study.degraded, &failed);
            if let Some(path) = json {
                if let Err(e) = std::fs::write(&path, study.to_json().render_pretty()) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
            if any_failed {
                return ExitCode::FAILURE;
            }
        }
        Command::CheckpointWrite(cfg) => match run_checkpoint_write(&cfg) {
            Ok(line) => println!("{line}"),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        },
        Command::CheckpointVerify(cfg) => match run_checkpoint_verify(&cfg) {
            Ok(line) => println!("{line}"),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        },
    }
    ExitCode::SUCCESS
}

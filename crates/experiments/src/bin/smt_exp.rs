//! `smt_exp` — the policy-comparison CLI.
//!
//! ```text
//! smt_exp --fetch icount --partition 2.8 --threads 8 --cycles 20000
//! smt_exp --fetch all --partition all          # the full Section-4 matrix
//! ```

use std::process::ExitCode;

use smt_experiments::{parse_args, run_matrix, ExpConfig, USAGE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg: ExpConfig = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) if msg == USAGE => {
            println!("{msg}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "SMT fetch/issue policy comparison — {} threads, {} cycles, seed {} ({} issue)",
        cfg.threads, cfg.cycles, cfg.seed, cfg.issue_policy
    );
    println!();
    let (table, reports) = run_matrix(&cfg);
    println!("total IPC (committed instructions per cycle):");
    println!("{table}");
    if cfg.verbose {
        for report in &reports {
            println!("{report}");
            println!();
        }
    }
    ExitCode::SUCCESS
}

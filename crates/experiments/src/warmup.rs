//! Shared warmed-state checkpoints for the study sweeps.
//!
//! Both studies measure behind a warmup window, and before this module
//! every cell re-simulated its own warmup — the single most redundant work
//! in a sweep. The **issue study** warms each unique (mix, seed,
//! partition) key **once** under the *canonical* configuration — ICOUNT
//! fetch, OLDEST_FIRST issue, no ablations — and the resulting
//! [`Simulator::save_checkpoint`] bytes are forked across the whole
//! fetch × issue cross-product (policies only steer the measured window;
//! they do not define the machine being warmed). The **ablation study**
//! cannot share that way — an ablation changes the machine itself, so a
//! warm cell must warm under its own fetch policy and ablation set to
//! keep the attribution numbers meaningful — and instead forks each warm
//! cell from a checkpoint warmed under the cell's own configuration
//! ([`warm_checkpoint_under`]), which the `--checkpoint-dir` cache dedups
//! across repeat sweeps.
//!
//! Two properties make the sharing observable-behaviour-free:
//!
//! * **Bit equivalence.** A restored simulator is bit-equivalent to one
//!   that ran straight through (`smt-core` pins this with its own tests),
//!   so forking changes nothing about a cell's measured window.
//! * **Canonical warmup in both paths.** The cold path
//!   (`share_warmup: false`, `--cold-warmup`) recomputes the *same*
//!   canonical warmup per cell instead of memoizing it. Shared and cold
//!   sweeps therefore produce byte-identical JSON documents; only the
//!   number of warmup simulations differs (`warmups_performed`).
//!
//! With `--checkpoint-dir` the per-key checkpoints are also cached on
//! disk, keyed by mix, seed, partition, warmup length and the
//! [`config_fingerprint`] of the canonical machine. Cache entries are
//! validated on load (header fingerprint, checksum trailer, and the
//! restored cycle count must equal the requested warmup); any mismatch is
//! logged and falls back to recomputing — a stale or corrupt cache can
//! slow a sweep down but never change its results.

use std::path::Path;
use std::sync::Arc;

use smt_core::checkpoint::config_fingerprint;
use smt_core::{
    fetch_policy_by_name, issue_policy_by_name, FetchPartition, SimConfig, SimReport, Simulator,
};
use smt_workload::Program;

use crate::study::{resolve_mix, MixImages};

/// The canonical warmup configuration for a (workloads, seed, partition)
/// key: ICOUNT fetch, OLDEST_FIRST issue, no ablations, no auto-warmup.
/// Every fork axis is pinned here so that a single warmup serves the whole
/// cross-product — and so that the cold path can reproduce it exactly.
pub fn canonical_config_for(images: &MixImages, seed: u64, partition: FetchPartition) -> SimConfig {
    images
        .apply(SimConfig::new())
        .with_seed(seed)
        .with_fetch(fetch_policy_by_name("icount").expect("shipped policy"))
        .with_issue(issue_policy_by_name("oldest").expect("shipped policy"))
        .with_partition(partition)
}

/// [`canonical_config_for`] on a plain synthetic program list.
pub fn canonical_config(
    programs: Vec<Arc<Program>>,
    seed: u64,
    partition: FetchPartition,
) -> SimConfig {
    canonical_config_for(&MixImages::Programs(programs), seed, partition)
}

/// Simulates `warmup` cycles under the given configuration and serializes
/// the warmed machine. `warmup == 0` yields a (valid) cycle-zero
/// checkpoint, so the fork path needs no special case for unwarmed sweeps.
pub fn compute_checkpoint_under(cfg: SimConfig, warmup: u64) -> Vec<u8> {
    let mut sim = cfg.build();
    for _ in 0..warmup {
        sim.step_cycle();
    }
    let mut bytes = Vec::new();
    sim.save_checkpoint(&mut bytes)
        .expect("writing a checkpoint to a Vec cannot fail");
    bytes
}

/// Simulates the canonical warmup for the key and serializes the warmed
/// machine (see [`compute_checkpoint_under`]).
pub fn compute_checkpoint(
    images: &MixImages,
    seed: u64,
    partition: FetchPartition,
    warmup: u64,
) -> Vec<u8> {
    compute_checkpoint_under(canonical_config_for(images, seed, partition), warmup)
}

/// A cache-filename-safe rendering of a mix string: custom mixes carry
/// path separators and `:`, which must not leak into the checkpoint
/// file name (uniqueness still comes from the config fingerprint in the
/// name, which covers the workload images themselves).
pub(crate) fn sanitize_stem(mix: &str) -> String {
    mix.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// One warmed checkpoint for the key, served from the on-disk cache when
/// `dir` is given and holds a valid entry, computed (and best-effort
/// cached) otherwise. The second element reports whether a warmup was
/// actually simulated — the sharing/caching accounting the sweeps expose
/// as `warmups_performed`.
pub fn warm_checkpoint(
    images: &MixImages,
    mix: &str,
    seed: u64,
    partition: FetchPartition,
    warmup: u64,
    dir: Option<&Path>,
) -> (Arc<Vec<u8>>, bool) {
    let stem = format!(
        "warm-{}-s{seed}-p{}.{}",
        sanitize_stem(mix),
        partition.threads_per_cycle,
        partition.insts_per_thread
    );
    warm_checkpoint_under(
        || canonical_config_for(images, seed, partition),
        &stem,
        warmup,
        dir,
    )
}

/// One warmed checkpoint for an arbitrary configuration, served from the
/// on-disk cache when `dir` is given and holds a valid entry, computed
/// (and best-effort cached) otherwise. `stem` must uniquely name every
/// cache axis the config fingerprint does not cover (the fingerprint
/// deliberately excludes the fork axes — fetch/issue policies and
/// ablations — so a caller whose warmup depends on them, like the
/// ablation study, encodes them here). The second element reports whether
/// a warmup was actually simulated.
pub fn warm_checkpoint_under(
    build: impl Fn() -> SimConfig,
    stem: &str,
    warmup: u64,
    dir: Option<&Path>,
) -> (Arc<Vec<u8>>, bool) {
    let path = dir.map(|d| {
        let fingerprint = config_fingerprint(&build());
        d.join(format!("{stem}-w{warmup}-{fingerprint:016x}.ckpt"))
    });

    if let Some(path) = &path {
        match load_cached(&build, warmup, path) {
            Ok(Some(bytes)) => return (Arc::new(bytes), false),
            Ok(None) => {}
            Err(why) => {
                eprintln!(
                    "checkpoint cache {}: {why}; recomputing the warmup",
                    path.display()
                );
            }
        }
    }

    let bytes = compute_checkpoint_under(build(), warmup);
    if let Some(path) = &path {
        // Best-effort: a cache that cannot be written only costs time.
        let write = path
            .parent()
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| std::fs::write(path, &bytes));
        if let Err(e) = write {
            eprintln!("checkpoint cache {}: write failed: {e}", path.display());
        }
    }
    (Arc::new(bytes), true)
}

/// Loads and validates one cache entry. `Ok(None)` means the entry does
/// not exist (a cold cache, not an error); `Err` is any reason the entry
/// cannot be trusted.
fn load_cached(
    build: impl Fn() -> SimConfig,
    warmup: u64,
    path: &Path,
) -> Result<Option<Vec<u8>>, String> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("read failed: {e}")),
    };
    let sim = Simulator::restore_checkpoint(build(), &mut bytes.as_slice())
        .map_err(|e| format!("invalid cached checkpoint: {e}"))?;
    if sim.cycle() != warmup {
        return Err(format!(
            "cached checkpoint is at cycle {}, expected warmup {warmup}",
            sim.cycle()
        ));
    }
    Ok(Some(bytes))
}

/// Forks one measurement cell off a warmed checkpoint: restore under the
/// cell's configuration (which may differ from the canonical one only in
/// the fork axes — fetch, issue, ablations), mark the report's provenance
/// flag, open a fresh measurement window at the warmup boundary and run.
/// The resulting report is byte-identical to a straight-through
/// `cfg.with_warmup(warmup).build().run(cycles)` run except for the
/// `restored_from_checkpoint` flag.
///
/// # Panics
///
/// Panics if the checkpoint does not match the configuration's machine —
/// the sweeps only fork checkpoints they wrote for the same key, so a
/// mismatch is a bug, not an input error.
pub fn fork_cell(cfg: SimConfig, checkpoint: &[u8], cycles: u64) -> SimReport {
    let mut sim = Simulator::restore_checkpoint(cfg, &mut &checkpoint[..])
        .expect("sweep checkpoints share the cell's machine fingerprint");
    sim.mark_restored_from_checkpoint();
    sim.reset_stats();
    sim.run(cycles)
}

/// What `smt_exp checkpoint-write` / `checkpoint-verify` operate on: one
/// canonical warmup key plus the file it is written to or read from.
#[derive(Debug, Clone)]
pub struct CheckpointCliConfig {
    /// Workload mix: a named mix or a custom `riscv:` / `trace:` list
    /// (see [`crate::study::validate_mix`]).
    pub mix: String,
    /// Workload-generation seed.
    pub seed: u64,
    /// Fetch partition of the warmed machine.
    pub partition: FetchPartition,
    /// Warmup cycles the checkpoint captures.
    pub warmup: u64,
    /// Measured cycles for the verification run (`checkpoint-verify` only).
    pub cycles: u64,
    /// The checkpoint file (`--path`).
    pub path: String,
}

impl Default for CheckpointCliConfig {
    fn default() -> CheckpointCliConfig {
        CheckpointCliConfig {
            mix: "standard".to_string(),
            seed: 42,
            partition: FetchPartition::new(2, 8),
            warmup: 10_000,
            cycles: 20_000,
            path: String::new(),
        }
    }
}

fn cli_images(cfg: &CheckpointCliConfig) -> Result<MixImages, String> {
    resolve_mix(&cfg.mix, cfg.seed)
}

/// Runs `smt_exp checkpoint-write`: simulates the canonical warmup for the
/// key and writes the checkpoint to `cfg.path`. Returns the human-readable
/// success line.
///
/// # Errors
///
/// Returns a message for an unknown mix or an unwritable path.
pub fn run_checkpoint_write(cfg: &CheckpointCliConfig) -> Result<String, String> {
    let images = cli_images(cfg)?;
    let bytes = compute_checkpoint(&images, cfg.seed, cfg.partition, cfg.warmup);
    std::fs::write(&cfg.path, &bytes).map_err(|e| format!("failed to write {}: {e}", cfg.path))?;
    Ok(format!(
        "wrote {} ({} bytes; {} mix, seed {}, partition {}, {} warmup cycles)",
        cfg.path,
        bytes.len(),
        cfg.mix,
        cfg.seed,
        cfg.partition,
        cfg.warmup
    ))
}

/// Runs `smt_exp checkpoint-verify`: restores `cfg.path` (written by any
/// process — this is the cross-process half of the round-trip), runs the
/// measured window, and byte-compares the report JSON against a
/// straight-through run of the same machine. Returns the human-readable
/// success line.
///
/// # Errors
///
/// Returns a message for an unknown mix, an unreadable or invalid
/// checkpoint, a checkpoint at the wrong cycle, or — the point of the
/// command — a restored run that diverges from the straight-through run.
pub fn run_checkpoint_verify(cfg: &CheckpointCliConfig) -> Result<String, String> {
    let images = cli_images(cfg)?;
    let bytes =
        std::fs::read(&cfg.path).map_err(|e| format!("failed to read {}: {e}", cfg.path))?;

    let restored_cfg = canonical_config_for(&images, cfg.seed, cfg.partition);
    let mut sim = Simulator::restore_checkpoint(restored_cfg, &mut bytes.as_slice())
        .map_err(|e| format!("restore of {} failed: {e}", cfg.path))?;
    if sim.cycle() != cfg.warmup {
        return Err(format!(
            "checkpoint {} is at cycle {}, expected warmup {}",
            cfg.path,
            sim.cycle(),
            cfg.warmup
        ));
    }
    sim.reset_stats();
    let restored = sim.run(cfg.cycles).to_json().render();

    let straight = canonical_config_for(&images, cfg.seed, cfg.partition)
        .with_warmup(cfg.warmup)
        .build()
        .run(cfg.cycles)
        .to_json()
        .render();

    if restored != straight {
        return Err(format!(
            "restored run diverged from the straight-through run \
             ({} vs {} bytes of report JSON)",
            restored.len(),
            straight.len()
        ));
    }
    Ok(format!(
        "verified {}: restored and straight-through runs are byte-identical \
         ({} measured cycles, {} bytes of report JSON)",
        cfg.path,
        cfg.cycles,
        restored.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programs() -> Vec<Arc<Program>> {
        crate::study::mix_by_name("mixed4")
            .unwrap()
            .iter()
            .enumerate()
            .map(|(slot, b)| Arc::new(b.generate(42, slot as u32)))
            .collect()
    }

    fn images() -> MixImages {
        MixImages::Programs(programs())
    }

    #[test]
    fn fork_matches_straight_through_warmup() {
        let partition = FetchPartition::new(2, 8);
        let ckpt = compute_checkpoint(&images(), 42, partition, 300);
        let cell_cfg = canonical_config(programs(), 42, partition);
        let forked = fork_cell(cell_cfg, &ckpt, 400);
        let straight = canonical_config(programs(), 42, partition)
            .with_warmup(300)
            .build()
            .run(400);
        assert!(forked.restored_from_checkpoint);
        assert_eq!(forked.warmup_cycles, straight.warmup_cycles);
        assert_eq!(forked.cycles, straight.cycles);
        assert_eq!(forked.total_committed(), straight.total_committed());
        // Everything but the provenance flag is byte-identical.
        let mut forked = forked;
        forked.restored_from_checkpoint = false;
        assert_eq!(
            forked.to_json().render(),
            straight.to_json().render(),
            "forked cell diverged from the straight-through run"
        );
    }

    #[test]
    fn disk_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("smt-exp-warm-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let partition = FetchPartition::new(2, 8);
        let p = images();

        let (first, computed) = warm_checkpoint(&p, "mixed4", 42, partition, 200, Some(&dir));
        assert!(computed, "cold cache must compute");
        let (second, computed) = warm_checkpoint(&p, "mixed4", 42, partition, 200, Some(&dir));
        assert!(!computed, "second call must be served from the cache");
        assert_eq!(*first, *second);

        // A corrupt cache entry is detected and recomputed, not trusted.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&entry, &bytes).unwrap();
        let (third, computed) = warm_checkpoint(&p, "mixed4", 42, partition, 200, Some(&dir));
        assert!(computed, "corrupt cache entry must be recomputed");
        assert_eq!(*first, *third);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_corruption_mode_is_typed_and_falls_back_to_a_cold_warmup() {
        use smt_core::CheckpointError;

        let dir =
            std::env::temp_dir().join(format!("smt-exp-corrupt-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let partition = FetchPartition::new(2, 8);
        let p = images();
        let warmup = 200;

        // The cacheless run every fallback must be byte-identical to.
        let (reference, _) = warm_checkpoint(&p, "mixed4", 42, partition, warmup, None);

        // Seed the on-disk cache and keep a pristine copy of the entry.
        let (cached, computed) = warm_checkpoint(&p, "mixed4", 42, partition, warmup, Some(&dir));
        assert!(computed, "cold cache must compute");
        assert_eq!(*reference, *cached);
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let pristine = std::fs::read(&entry).unwrap();

        // Every way an entry can rot on disk, with the typed error the
        // restore path must map it to. Each case mutates a pristine copy
        // in place (truncation included).
        type Mutate = fn(&mut Vec<u8>);
        type Expect = fn(&CheckpointError) -> bool;
        let cases: [(&str, Mutate, Expect); 5] = [
            (
                "flipped magic",
                |b| b[0] ^= 0xFF,
                |e| matches!(e, CheckpointError::BadMagic),
            ),
            (
                "future format version",
                |b| b[8..12].copy_from_slice(&u32::MAX.to_le_bytes()),
                |e| matches!(e, CheckpointError::UnsupportedVersion { found: u32::MAX }),
            ),
            (
                "wrong config fingerprint",
                |b| {
                    for byte in &mut b[12..20] {
                        *byte ^= 0xA5;
                    }
                },
                |e| matches!(e, CheckpointError::ConfigMismatch { .. }),
            ),
            (
                "payload bit flip",
                |b| {
                    let last = b.len() - 1;
                    b[last] ^= 0x01; // lands in the FNV-1a trailer
                },
                |e| matches!(e, CheckpointError::Corrupt(_)),
            ),
            (
                "truncated stream",
                |b| b.truncate(b.len() / 2),
                |e| matches!(e, CheckpointError::Truncated),
            ),
        ];

        for (label, mutate, is_expected) in cases {
            let mut rotten = pristine.clone();
            mutate(&mut rotten);

            // The restore path reports the precise typed error …
            let err = match Simulator::restore_checkpoint(
                canonical_config_for(&p, 42, partition),
                &mut rotten.as_slice(),
            ) {
                Ok(_) => panic!("{label}: restore accepted a rotten checkpoint"),
                Err(e) => e,
            };
            assert!(is_expected(&err), "{label}: unexpected error {err}");

            // … and the cache layer degrades to a cold warmup whose bytes
            // match the cacheless run exactly.
            std::fs::write(&entry, &rotten).unwrap();
            let (again, computed) =
                warm_checkpoint(&p, "mixed4", 42, partition, warmup, Some(&dir));
            assert!(computed, "{label}: rotten entry must be recomputed");
            assert_eq!(*reference, *again, "{label}: fallback changed the bytes");

            // The fallback best-effort repaired the cache on the way out.
            let (served, computed) =
                warm_checkpoint(&p, "mixed4", 42, partition, warmup, Some(&dir));
            assert!(!computed, "{label}: repaired entry must serve from disk");
            assert_eq!(*reference, *served);
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_cli_write_then_verify() {
        let path =
            std::env::temp_dir().join(format!("smt-exp-cli-roundtrip-{}.ckpt", std::process::id()));
        let cfg = CheckpointCliConfig {
            mix: "mixed4".to_string(),
            warmup: 250,
            cycles: 300,
            path: path.to_string_lossy().into_owned(),
            ..CheckpointCliConfig::default()
        };
        let wrote = run_checkpoint_write(&cfg).unwrap();
        assert!(wrote.contains("bytes"));
        let verified = run_checkpoint_verify(&cfg).unwrap();
        assert!(verified.contains("byte-identical"));

        // A wrong expected warmup is refused.
        let skewed = CheckpointCliConfig {
            warmup: 99,
            ..cfg.clone()
        };
        assert!(run_checkpoint_verify(&skewed)
            .unwrap_err()
            .contains("expected warmup"));

        std::fs::remove_file(&path).ok();
    }
}

//! Shared warmed-state checkpoints for the study sweeps.
//!
//! Both studies measure behind a warmup window, and before this module
//! every cell re-simulated its own warmup — the single most redundant work
//! in a sweep. The **issue study** warms each unique (mix, seed,
//! partition) key **once** under the *canonical* configuration — ICOUNT
//! fetch, OLDEST_FIRST issue, no ablations — and the resulting
//! [`Simulator::save_checkpoint`] bytes are forked across the whole
//! fetch × issue cross-product (policies only steer the measured window;
//! they do not define the machine being warmed). The **ablation study**
//! cannot share that way — an ablation changes the machine itself, so a
//! warm cell must warm under its own fetch policy and ablation set to
//! keep the attribution numbers meaningful — and instead forks each warm
//! cell from a checkpoint warmed under the cell's own configuration
//! ([`warm_checkpoint_under`]), which the `--checkpoint-dir` cache dedups
//! across repeat sweeps.
//!
//! Two properties make the sharing observable-behaviour-free:
//!
//! * **Bit equivalence.** A restored simulator is bit-equivalent to one
//!   that ran straight through (`smt-core` pins this with its own tests),
//!   so forking changes nothing about a cell's measured window.
//! * **Canonical warmup in both paths.** The cold path
//!   (`share_warmup: false`, `--cold-warmup`) recomputes the *same*
//!   canonical warmup per cell instead of memoizing it. Shared and cold
//!   sweeps therefore produce byte-identical JSON documents; only the
//!   number of warmup simulations differs (`warmups_performed`).
//!
//! With `--checkpoint-dir` the per-key checkpoints are also cached on
//! disk, keyed by mix, seed, partition, warmup length and the
//! [`config_fingerprint`] of the canonical machine. Cache entries are
//! validated on load (header fingerprint, checksum trailer, and the
//! restored cycle count must equal the requested warmup); any mismatch
//! falls back to recomputing — a stale or corrupt cache can slow a sweep
//! down but never change its results. Cache I/O goes through the durable
//! layer (`crate::durable`): writes are atomic (temp file + rename, so
//! a killed sweep never leaves a torn entry under the real name),
//! transient errors are retried, and every fallback is reported as a
//! typed [`Degradation`] in the returned [`WarmOutcome`] instead of a
//! fire-and-forget `eprintln!` — the sweeps surface them in the study
//! document's `degraded_cells` list.

use std::path::Path;
use std::sync::Arc;

use smt_core::checkpoint::config_fingerprint;
use smt_core::{
    fetch_policy_by_name, issue_policy_by_name, FetchPartition, SimConfig, SimReport, Simulator,
};
use smt_workload::Program;

use crate::fault::{Degradation, DegradeReason};
use crate::study::{resolve_mix, MixImages};

/// The canonical warmup configuration for a (workloads, seed, partition)
/// key: ICOUNT fetch, OLDEST_FIRST issue, no ablations, no auto-warmup.
/// Every fork axis is pinned here so that a single warmup serves the whole
/// cross-product — and so that the cold path can reproduce it exactly.
pub fn canonical_config_for(images: &MixImages, seed: u64, partition: FetchPartition) -> SimConfig {
    images
        .apply(SimConfig::new())
        .with_seed(seed)
        .with_fetch(fetch_policy_by_name("icount").expect("shipped policy"))
        .with_issue(issue_policy_by_name("oldest").expect("shipped policy"))
        .with_partition(partition)
}

/// [`canonical_config_for`] on a plain synthetic program list.
pub fn canonical_config(
    programs: Vec<Arc<Program>>,
    seed: u64,
    partition: FetchPartition,
) -> SimConfig {
    canonical_config_for(&MixImages::Programs(programs), seed, partition)
}

/// Simulates `warmup` cycles under the given configuration and serializes
/// the warmed machine. `warmup == 0` yields a (valid) cycle-zero
/// checkpoint, so the fork path needs no special case for unwarmed sweeps.
pub fn compute_checkpoint_under(cfg: SimConfig, warmup: u64) -> Vec<u8> {
    let mut sim = cfg.build();
    for _ in 0..warmup {
        sim.step_cycle();
    }
    let mut bytes = Vec::new();
    sim.save_checkpoint(&mut bytes)
        .expect("writing a checkpoint to a Vec cannot fail");
    bytes
}

/// Simulates the canonical warmup for the key and serializes the warmed
/// machine (see [`compute_checkpoint_under`]).
pub fn compute_checkpoint(
    images: &MixImages,
    seed: u64,
    partition: FetchPartition,
    warmup: u64,
) -> Vec<u8> {
    compute_checkpoint_under(canonical_config_for(images, seed, partition), warmup)
}

/// A cache-filename-safe rendering of a mix string: custom mixes carry
/// path separators and `:`, which must not leak into the checkpoint
/// file name (uniqueness still comes from the config fingerprint in the
/// name, which covers the workload images themselves).
pub(crate) fn sanitize_stem(mix: &str) -> String {
    mix.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// One warmed checkpoint, plus how it was obtained.
#[derive(Debug, Clone)]
pub struct WarmOutcome {
    /// The serialized warmed machine.
    pub checkpoint: Arc<Vec<u8>>,
    /// Whether a warmup was actually simulated (`false` when the on-disk
    /// cache served the entry) — the accounting the sweeps expose as
    /// `warmups_performed`.
    pub computed: bool,
    /// Cache troubles survived along the way (invalid entries recomputed,
    /// write-backs that failed), in occurrence order. Empty on the happy
    /// path; never affects the checkpoint bytes.
    pub degradations: Vec<Degradation>,
}

impl WarmOutcome {
    fn computed_fresh(bytes: Vec<u8>, degradations: Vec<Degradation>) -> WarmOutcome {
        WarmOutcome {
            checkpoint: Arc::new(bytes),
            computed: true,
            degradations,
        }
    }
}

/// One warmed checkpoint for the key, served from the on-disk cache when
/// `dir` is given and holds a valid entry, computed (and best-effort
/// cached) otherwise.
pub fn warm_checkpoint(
    images: &MixImages,
    mix: &str,
    seed: u64,
    partition: FetchPartition,
    warmup: u64,
    dir: Option<&Path>,
) -> WarmOutcome {
    let stem = format!(
        "warm-{}-s{seed}-p{}.{}",
        sanitize_stem(mix),
        partition.threads_per_cycle,
        partition.insts_per_thread
    );
    warm_checkpoint_under(
        || canonical_config_for(images, seed, partition),
        &stem,
        warmup,
        dir,
    )
}

/// One warmed checkpoint for an arbitrary configuration, served from the
/// on-disk cache when `dir` is given and holds a valid entry, computed
/// (and best-effort cached) otherwise. `stem` must uniquely name every
/// cache axis the config fingerprint does not cover (the fingerprint
/// deliberately excludes the fork axes — fetch/issue policies and
/// ablations — so a caller whose warmup depends on them, like the
/// ablation study, encodes them here).
///
/// Cache trouble never fails the warmup: an unreadable or invalid entry
/// is recomputed and a failed write-back leaves the sweep uncached, each
/// recorded as a [`Degradation`] on the returned [`WarmOutcome`].
pub fn warm_checkpoint_under(
    build: impl Fn() -> SimConfig,
    stem: &str,
    warmup: u64,
    dir: Option<&Path>,
) -> WarmOutcome {
    let path = dir.map(|d| {
        let fingerprint = config_fingerprint(&build());
        d.join(format!("{stem}-w{warmup}-{fingerprint:016x}.ckpt"))
    });
    let entry_name = |path: &Path| {
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string())
    };

    let mut degradations = Vec::new();
    if let Some(path) = &path {
        match load_cached(&build, warmup, path) {
            Ok(Some(bytes)) => {
                return WarmOutcome {
                    checkpoint: Arc::new(bytes),
                    computed: false,
                    degradations,
                }
            }
            Ok(None) => {}
            Err((reason, detail)) => degradations.push(Degradation {
                key: entry_name(path),
                reason,
                detail: format!("{detail}; recomputed the warmup"),
            }),
        }
    }

    let bytes = compute_checkpoint_under(build(), warmup);
    if let Some(path) = &path {
        // Best-effort: a cache that cannot be written only costs time.
        if let Err(e) = crate::durable::atomic_write(path, &bytes, "cache-write", 0) {
            degradations.push(Degradation {
                key: entry_name(path),
                reason: DegradeReason::CheckpointCacheWrite,
                detail: format!("write failed: {e}; sweep continues uncached"),
            });
        }
    }
    WarmOutcome::computed_fresh(bytes, degradations)
}

/// Loads and validates one cache entry. `Ok(None)` means the entry does
/// not exist (a cold cache, not an error); `Err` is any reason the entry
/// cannot be used, as a degradation reason plus detail.
fn load_cached(
    build: impl Fn() -> SimConfig,
    warmup: u64,
    path: &Path,
) -> Result<Option<Vec<u8>>, (DegradeReason, String)> {
    let bytes = match crate::durable::read_file(path, "cache-read", 0) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err((
                DegradeReason::CheckpointCacheRead,
                format!("read failed: {e}"),
            ))
        }
    };
    let invalid = |msg: String| (DegradeReason::CheckpointCacheInvalid, msg);
    let sim = Simulator::restore_checkpoint(build(), &mut bytes.as_slice())
        .map_err(|e| invalid(format!("invalid cached checkpoint: {e}")))?;
    if sim.cycle() != warmup {
        return Err(invalid(format!(
            "cached checkpoint is at cycle {}, expected warmup {warmup}",
            sim.cycle()
        )));
    }
    Ok(Some(bytes))
}

/// Forks one measurement cell off a warmed checkpoint: restore under the
/// cell's configuration (which may differ from the canonical one only in
/// the fork axes — fetch, issue, ablations), mark the report's provenance
/// flag, open a fresh measurement window at the warmup boundary and run.
/// The resulting report is byte-identical to a straight-through
/// `cfg.with_warmup(warmup).build().run(cycles)` run except for the
/// `restored_from_checkpoint` flag.
///
/// # Errors
///
/// Returns the typed [`CheckpointError`](smt_core::CheckpointError) when
/// the checkpoint does not match the configuration's machine. The sweeps
/// only fork checkpoints they produced for the same key, so this is
/// next to unreachable — but it is contained as a per-cell `checkpoint`
/// failure rather than a process abort.
pub fn try_fork_cell(
    cfg: SimConfig,
    checkpoint: &[u8],
    cycles: u64,
) -> Result<SimReport, smt_core::CheckpointError> {
    let mut sim = Simulator::restore_checkpoint(cfg, &mut &checkpoint[..])?;
    sim.mark_restored_from_checkpoint();
    sim.reset_stats();
    Ok(sim.run(cycles))
}

/// [`try_fork_cell`] for callers outside a containment boundary.
///
/// # Panics
///
/// Panics if the checkpoint does not match the configuration's machine.
pub fn fork_cell(cfg: SimConfig, checkpoint: &[u8], cycles: u64) -> SimReport {
    try_fork_cell(cfg, checkpoint, cycles)
        .expect("sweep checkpoints share the cell's machine fingerprint")
}

/// What `smt_exp checkpoint-write` / `checkpoint-verify` operate on: one
/// canonical warmup key plus the file it is written to or read from.
#[derive(Debug, Clone)]
pub struct CheckpointCliConfig {
    /// Workload mix: a named mix or a custom `riscv:` / `trace:` list
    /// (see [`crate::study::validate_mix`]).
    pub mix: String,
    /// Workload-generation seed.
    pub seed: u64,
    /// Fetch partition of the warmed machine.
    pub partition: FetchPartition,
    /// Warmup cycles the checkpoint captures.
    pub warmup: u64,
    /// Measured cycles for the verification run (`checkpoint-verify` only).
    pub cycles: u64,
    /// The checkpoint file (`--path`).
    pub path: String,
}

impl Default for CheckpointCliConfig {
    fn default() -> CheckpointCliConfig {
        CheckpointCliConfig {
            mix: "standard".to_string(),
            seed: 42,
            partition: FetchPartition::new(2, 8),
            warmup: 10_000,
            cycles: 20_000,
            path: String::new(),
        }
    }
}

fn cli_images(cfg: &CheckpointCliConfig) -> Result<MixImages, String> {
    resolve_mix(&cfg.mix, cfg.seed)
}

/// Runs `smt_exp checkpoint-write`: simulates the canonical warmup for the
/// key and writes the checkpoint to `cfg.path`. Returns the human-readable
/// success line.
///
/// # Errors
///
/// Returns a message for an unknown mix or an unwritable path.
pub fn run_checkpoint_write(cfg: &CheckpointCliConfig) -> Result<String, String> {
    let images = cli_images(cfg)?;
    let bytes = compute_checkpoint(&images, cfg.seed, cfg.partition, cfg.warmup);
    std::fs::write(&cfg.path, &bytes).map_err(|e| format!("failed to write {}: {e}", cfg.path))?;
    Ok(format!(
        "wrote {} ({} bytes; {} mix, seed {}, partition {}, {} warmup cycles)",
        cfg.path,
        bytes.len(),
        cfg.mix,
        cfg.seed,
        cfg.partition,
        cfg.warmup
    ))
}

/// Runs `smt_exp checkpoint-verify`: restores `cfg.path` (written by any
/// process — this is the cross-process half of the round-trip), runs the
/// measured window, and byte-compares the report JSON against a
/// straight-through run of the same machine. Returns the human-readable
/// success line.
///
/// # Errors
///
/// Returns a message for an unknown mix, an unreadable or invalid
/// checkpoint, a checkpoint at the wrong cycle, or — the point of the
/// command — a restored run that diverges from the straight-through run.
pub fn run_checkpoint_verify(cfg: &CheckpointCliConfig) -> Result<String, String> {
    let images = cli_images(cfg)?;
    let bytes =
        std::fs::read(&cfg.path).map_err(|e| format!("failed to read {}: {e}", cfg.path))?;

    let restored_cfg = canonical_config_for(&images, cfg.seed, cfg.partition);
    let mut sim = Simulator::restore_checkpoint(restored_cfg, &mut bytes.as_slice())
        .map_err(|e| format!("restore of {} failed: {e}", cfg.path))?;
    if sim.cycle() != cfg.warmup {
        return Err(format!(
            "checkpoint {} is at cycle {}, expected warmup {}",
            cfg.path,
            sim.cycle(),
            cfg.warmup
        ));
    }
    sim.reset_stats();
    let restored = sim.run(cfg.cycles).to_json().render();

    let straight = canonical_config_for(&images, cfg.seed, cfg.partition)
        .with_warmup(cfg.warmup)
        .build()
        .run(cfg.cycles)
        .to_json()
        .render();

    if restored != straight {
        return Err(format!(
            "restored run diverged from the straight-through run \
             ({} vs {} bytes of report JSON)",
            restored.len(),
            straight.len()
        ));
    }
    Ok(format!(
        "verified {}: restored and straight-through runs are byte-identical \
         ({} measured cycles, {} bytes of report JSON)",
        cfg.path,
        cfg.cycles,
        restored.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programs() -> Vec<Arc<Program>> {
        crate::study::mix_by_name("mixed4")
            .unwrap()
            .iter()
            .enumerate()
            .map(|(slot, b)| Arc::new(b.generate(42, slot as u32)))
            .collect()
    }

    fn images() -> MixImages {
        MixImages::Programs(programs())
    }

    #[test]
    fn fork_matches_straight_through_warmup() {
        let partition = FetchPartition::new(2, 8);
        let ckpt = compute_checkpoint(&images(), 42, partition, 300);
        let cell_cfg = canonical_config(programs(), 42, partition);
        let forked = fork_cell(cell_cfg, &ckpt, 400);
        let straight = canonical_config(programs(), 42, partition)
            .with_warmup(300)
            .build()
            .run(400);
        assert!(forked.restored_from_checkpoint);
        assert_eq!(forked.warmup_cycles, straight.warmup_cycles);
        assert_eq!(forked.cycles, straight.cycles);
        assert_eq!(forked.total_committed(), straight.total_committed());
        // Everything but the provenance flag is byte-identical.
        let mut forked = forked;
        forked.restored_from_checkpoint = false;
        assert_eq!(
            forked.to_json().render(),
            straight.to_json().render(),
            "forked cell diverged from the straight-through run"
        );
    }

    #[test]
    fn disk_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("smt-exp-warm-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let partition = FetchPartition::new(2, 8);
        let p = images();

        let first = warm_checkpoint(&p, "mixed4", 42, partition, 200, Some(&dir));
        assert!(first.computed, "cold cache must compute");
        assert!(first.degradations.is_empty(), "{:?}", first.degradations);
        let second = warm_checkpoint(&p, "mixed4", 42, partition, 200, Some(&dir));
        assert!(
            !second.computed,
            "second call must be served from the cache"
        );
        assert!(second.degradations.is_empty());
        assert_eq!(*first.checkpoint, *second.checkpoint);

        // A corrupt cache entry is detected and recomputed, not trusted.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&entry, &bytes).unwrap();
        let third = warm_checkpoint(&p, "mixed4", 42, partition, 200, Some(&dir));
        assert!(third.computed, "corrupt cache entry must be recomputed");
        assert_eq!(*first.checkpoint, *third.checkpoint);
        // The fallback is no longer silent: it is a typed degradation.
        assert_eq!(third.degradations.len(), 1);
        assert_eq!(
            third.degradations[0].reason,
            DegradeReason::CheckpointCacheInvalid
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_corruption_mode_is_typed_and_falls_back_to_a_cold_warmup() {
        use smt_core::CheckpointError;

        let dir =
            std::env::temp_dir().join(format!("smt-exp-corrupt-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let partition = FetchPartition::new(2, 8);
        let p = images();
        let warmup = 200;

        // The cacheless run every fallback must be byte-identical to.
        let reference = warm_checkpoint(&p, "mixed4", 42, partition, warmup, None).checkpoint;

        // Seed the on-disk cache and keep a pristine copy of the entry.
        let cached = warm_checkpoint(&p, "mixed4", 42, partition, warmup, Some(&dir));
        assert!(cached.computed, "cold cache must compute");
        assert_eq!(*reference, *cached.checkpoint);
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let pristine = std::fs::read(&entry).unwrap();

        // Every way an entry can rot on disk, with the typed error the
        // restore path must map it to. Each case mutates a pristine copy
        // in place (truncation included).
        type Mutate = fn(&mut Vec<u8>);
        type Expect = fn(&CheckpointError) -> bool;
        let cases: [(&str, Mutate, Expect); 5] = [
            (
                "flipped magic",
                |b| b[0] ^= 0xFF,
                |e| matches!(e, CheckpointError::BadMagic),
            ),
            (
                "future format version",
                |b| b[8..12].copy_from_slice(&u32::MAX.to_le_bytes()),
                |e| matches!(e, CheckpointError::UnsupportedVersion { found: u32::MAX }),
            ),
            (
                "wrong config fingerprint",
                |b| {
                    for byte in &mut b[12..20] {
                        *byte ^= 0xA5;
                    }
                },
                |e| matches!(e, CheckpointError::ConfigMismatch { .. }),
            ),
            (
                "payload bit flip",
                |b| {
                    let last = b.len() - 1;
                    b[last] ^= 0x01; // lands in the FNV-1a trailer
                },
                |e| matches!(e, CheckpointError::Corrupt(_)),
            ),
            (
                "truncated stream",
                |b| b.truncate(b.len() / 2),
                |e| matches!(e, CheckpointError::Truncated),
            ),
        ];

        for (label, mutate, is_expected) in cases {
            let mut rotten = pristine.clone();
            mutate(&mut rotten);

            // The restore path reports the precise typed error …
            let err = match Simulator::restore_checkpoint(
                canonical_config_for(&p, 42, partition),
                &mut rotten.as_slice(),
            ) {
                Ok(_) => panic!("{label}: restore accepted a rotten checkpoint"),
                Err(e) => e,
            };
            assert!(is_expected(&err), "{label}: unexpected error {err}");

            // … and the cache layer degrades to a cold warmup whose bytes
            // match the cacheless run exactly, reporting the degradation.
            std::fs::write(&entry, &rotten).unwrap();
            let again = warm_checkpoint(&p, "mixed4", 42, partition, warmup, Some(&dir));
            assert!(again.computed, "{label}: rotten entry must be recomputed");
            assert_eq!(
                *reference, *again.checkpoint,
                "{label}: fallback changed the bytes"
            );
            assert_eq!(again.degradations.len(), 1, "{label}");
            assert_eq!(
                again.degradations[0].reason,
                DegradeReason::CheckpointCacheInvalid,
                "{label}"
            );

            // The fallback best-effort repaired the cache on the way out.
            let served = warm_checkpoint(&p, "mixed4", 42, partition, warmup, Some(&dir));
            assert!(
                !served.computed,
                "{label}: repaired entry must serve from disk"
            );
            assert_eq!(*reference, *served.checkpoint);
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_cli_write_then_verify() {
        let path =
            std::env::temp_dir().join(format!("smt-exp-cli-roundtrip-{}.ckpt", std::process::id()));
        let cfg = CheckpointCliConfig {
            mix: "mixed4".to_string(),
            warmup: 250,
            cycles: 300,
            path: path.to_string_lossy().into_owned(),
            ..CheckpointCliConfig::default()
        };
        let wrote = run_checkpoint_write(&cfg).unwrap();
        assert!(wrote.contains("bytes"));
        let verified = run_checkpoint_verify(&cfg).unwrap();
        assert!(verified.contains("byte-identical"));

        // A wrong expected warmup is refused.
        let skewed = CheckpointCliConfig {
            warmup: 99,
            ..cfg.clone()
        };
        assert!(run_checkpoint_verify(&skewed)
            .unwrap_err()
            .contains("expected warmup"));

        std::fs::remove_file(&path).ok();
    }
}

//! Branch-prediction structures for the SMT simulator.
//!
//! The paper's fetch unit uses a decoupled branch target buffer (BTB) and
//! pattern history table (PHT) in the style of Calder & Grunwald, with the
//! PHT indexed by the XOR of low PC bits and a global history register
//! (McFarling's gshare), plus a 12-entry per-context return address stack:
//!
//! * 256-entry, 4-way set-associative BTB, with a **thread id in every
//!   entry** to avoid predicting phantom branches for other threads,
//! * 2K x 2-bit PHT,
//! * 12-entry return stack per context.
//!
//! The predictor is a passive structure: the pipeline decides when to
//! predict and when to update (correct-path resolution), and owns
//! speculative-history recovery by snapshotting the history register into
//! each in-flight branch.
//!
//! # Examples
//!
//! ```
//! use smt_branch::{BranchPredictor, PredictorConfig};
//! use smt_isa::{Opcode, ThreadId};
//!
//! let mut bp = BranchPredictor::new(PredictorConfig::default(), 8);
//! let t = ThreadId(0);
//! // Train a conditional branch at 0x1000 to be taken to 0x2000.
//! for _ in 0..4 {
//!     let p = bp.predict(t, 0x1000, Opcode::CondBranch);
//!     bp.resolve_cond(t, 0x1000, p.pht_index, true, 0x2000);
//! }
//! let p = bp.predict(t, 0x1000, Opcode::CondBranch);
//! assert!(p.taken);
//! assert_eq!(p.target, Some(0x2000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use smt_isa::{Addr, Opcode, ThreadId};

/// Configuration of the branch prediction hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Total BTB entries (default 256, as in the paper).
    pub btb_entries: usize,
    /// BTB associativity (default 4-way).
    pub btb_assoc: usize,
    /// PHT entries, each a 2-bit counter (default 2048).
    pub pht_entries: usize,
    /// Return-address-stack entries per context (default 12).
    pub ras_entries: usize,
    /// Whether BTB entries carry a thread id (paper: yes). Disabling this
    /// is an ablation that re-introduces cross-thread phantom hits.
    pub thread_tagged_btb: bool,
    /// Whether each context has a private RAS (paper: yes). Disabling
    /// shares one stack among all contexts — an ablation.
    pub per_thread_ras: bool,
}

impl Default for PredictorConfig {
    fn default() -> PredictorConfig {
        PredictorConfig {
            btb_entries: 256,
            btb_assoc: 4,
            pht_entries: 2048,
            ras_entries: 12,
            thread_tagged_btb: true,
            per_thread_ras: true,
        }
    }
}

impl PredictorConfig {
    /// The paper's "better scheme": doubled BTB and PHT (Section 7).
    pub fn doubled() -> PredictorConfig {
        PredictorConfig {
            btb_entries: 512,
            pht_entries: 4096,
            ..PredictorConfig::default()
        }
    }

    /// Number of history bits (= log2 of PHT entries).
    pub fn history_bits(&self) -> u32 {
        self.pht_entries.trailing_zeros()
    }
}

/// Prediction-unit activity counters.
///
/// Accumulated by [`BranchPredictor::predict`]; cleared by
/// [`BranchPredictor::reset_stats`] (e.g. at the end of a warmup window)
/// without touching the BTB, PHT, RAS or history state, so measurement
/// windows start with trained tables but clean counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Control-instruction predictions made (all kinds).
    pub predictions: u64,
    /// BTB lookups performed (taken conditionals and non-return jumps).
    pub btb_lookups: u64,
    /// BTB lookups that produced a target.
    pub btb_hits: u64,
    /// Return predictions attempted via the RAS.
    pub ras_predictions: u64,
    /// Return predictions that found the stack empty (misfetch at fetch).
    pub ras_underflows: u64,
}

impl PredictorStats {
    /// Fraction of BTB lookups that hit (0.0 when none were made).
    pub fn btb_hit_rate(&self) -> f64 {
        if self.btb_lookups == 0 {
            0.0
        } else {
            self.btb_hits as f64 / self.btb_lookups as f64
        }
    }
}

/// The outcome of consulting the predictor for one control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional control).
    pub taken: bool,
    /// Predicted target, if one was available (BTB/RAS hit). A
    /// predicted-taken control instruction with `target == None` is a
    /// *misfetch*: the fetch unit cannot redirect until decode computes
    /// the target.
    pub target: Option<Addr>,
    /// PHT index used for a conditional prediction (for the later update).
    pub pht_index: u32,
    /// Global history value *before* this prediction's speculative update,
    /// so the pipeline can restore it on a squash.
    pub history_before: u16,
}

impl Prediction {
    /// An oracle-perfect prediction for a control instruction whose
    /// architectural outcome is `(taken, next_pc)`: correct direction,
    /// correct target, no predictor state consulted (the
    /// perfect-branch-prediction ablation). The PHT index and history
    /// snapshot are zero — a perfect prediction never mispredicts, so they
    /// are never used for repair, and the predictor that would consume them
    /// is never trained.
    pub fn perfect(taken: bool, next_pc: Addr) -> Prediction {
        Prediction {
            taken,
            target: Some(next_pc),
            pht_index: 0,
            history_before: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    thread: u8,
    target: Addr,
    lru: u8,
}

/// Branch target buffer: set-associative, thread-tagged, true-LRU per set.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: usize,
    assoc: usize,
    thread_tagged: bool,
    entries: Vec<BtbEntry>,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power-of-two multiple of `assoc`.
    pub fn new(entries: usize, assoc: usize, thread_tagged: bool) -> Btb {
        assert!(
            assoc > 0 && entries.is_multiple_of(assoc),
            "entries must be a multiple of assoc"
        );
        let sets = entries / assoc;
        assert!(
            sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        Btb {
            sets,
            assoc,
            thread_tagged,
            entries: vec![BtbEntry::default(); entries],
        }
    }

    #[inline]
    fn set_index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag(&self, pc: Addr) -> u64 {
        // Set count is a power of two (asserted at construction): shift,
        // not divide, on the per-prediction hot path.
        (pc >> 2) >> self.sets.trailing_zeros()
    }

    /// Looks up a target for `pc` fetched by `thread`. Updates LRU on hit.
    pub fn lookup(&mut self, thread: ThreadId, pc: Addr) -> Option<Addr> {
        let set = self.set_index(pc);
        let tag = self.tag(pc);
        let base = set * self.assoc;
        let mut hit_way = None;
        for way in 0..self.assoc {
            let e = &self.entries[base + way];
            if e.valid && e.tag == tag && (!self.thread_tagged || e.thread == thread.0) {
                hit_way = Some(way);
                break;
            }
        }
        let way = hit_way?;
        let hit_lru = self.entries[base + way].lru;
        for w in 0..self.assoc {
            let e = &mut self.entries[base + w];
            if e.valid && e.lru < hit_lru {
                e.lru += 1;
            }
        }
        self.entries[base + way].lru = 0;
        Some(self.entries[base + way].target)
    }

    /// Inserts (or refreshes) a target for `pc`, evicting the LRU way.
    pub fn insert(&mut self, thread: ThreadId, pc: Addr, target: Addr) {
        let set = self.set_index(pc);
        let tag = self.tag(pc);
        let base = set * self.assoc;
        // Refresh in place on a tag match.
        for way in 0..self.assoc {
            let e = &self.entries[base + way];
            if e.valid && e.tag == tag && (!self.thread_tagged || e.thread == thread.0) {
                let hit_lru = self.entries[base + way].lru;
                for w in 0..self.assoc {
                    let e = &mut self.entries[base + w];
                    if e.valid && e.lru < hit_lru {
                        e.lru += 1;
                    }
                }
                let e = &mut self.entries[base + way];
                e.target = target;
                e.lru = 0;
                return;
            }
        }
        // Miss: pick an invalid way, else the LRU way.
        let victim = (0..self.assoc)
            .find(|&way| !self.entries[base + way].valid)
            .unwrap_or_else(|| {
                (0..self.assoc)
                    .max_by_key(|&way| self.entries[base + way].lru)
                    .expect("associativity is positive")
            });
        for w in 0..self.assoc {
            let e = &mut self.entries[base + w];
            if e.valid {
                e.lru = e.lru.saturating_add(1).min(self.assoc as u8 - 1);
            }
        }
        self.entries[base + victim] = BtbEntry {
            valid: true,
            tag,
            thread: thread.0,
            target,
            lru: 0,
        };
    }
}

/// Pattern history table of 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct Pht {
    counters: Vec<u8>,
}

impl Pht {
    /// Creates a PHT with `entries` counters, initialized weakly-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Pht {
        assert!(
            entries.is_power_of_two(),
            "PHT entries must be a power of two"
        );
        Pht {
            counters: vec![2; entries],
        }
    }

    /// Predicted direction for the given index.
    #[inline]
    pub fn predict(&self, index: u32) -> bool {
        self.counters[index as usize] >= 2
    }

    /// Trains the counter at `index` with the actual direction.
    #[inline]
    pub fn update(&mut self, index: u32, taken: bool) {
        let c = &mut self.counters[index as usize];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table is empty (never true for a constructed PHT).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

/// A fixed-capacity circular return-address stack.
///
/// Overflow silently overwrites the oldest entry; underflow returns `None`.
/// Wrong-path pushes and pops corrupt the stack exactly as they would in
/// hardware without checkpoint repair.
#[derive(Debug, Clone)]
pub struct Ras {
    slots: Vec<Addr>,
    top: usize,
    depth: usize,
}

impl Ras {
    /// Creates an empty stack with `capacity` slots.
    pub fn new(capacity: usize) -> Ras {
        assert!(capacity > 0, "RAS capacity must be positive");
        Ras {
            slots: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address (called at fetch of a subroutine call).
    pub fn push(&mut self, addr: Addr) {
        self.top = (self.top + 1) % self.slots.len();
        self.slots[self.top] = addr;
        self.depth = (self.depth + 1).min(self.slots.len());
    }

    /// Pops the predicted return address (called at fetch of a return).
    pub fn pop(&mut self) -> Option<Addr> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.slots[self.top];
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.depth -= 1;
        Some(addr)
    }

    /// Current number of valid entries.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// The complete branch prediction unit: BTB + PHT + per-context RAS and
/// per-context speculative global history.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: PredictorConfig,
    btb: Btb,
    pht: Pht,
    ras: Vec<Ras>,
    history: Vec<u16>,
    history_mask: u16,
    stats: PredictorStats,
}

impl BranchPredictor {
    /// Creates a predictor for `threads` hardware contexts.
    pub fn new(cfg: PredictorConfig, threads: usize) -> BranchPredictor {
        let btb = Btb::new(cfg.btb_entries, cfg.btb_assoc, cfg.thread_tagged_btb);
        let pht = Pht::new(cfg.pht_entries);
        let ras_count = if cfg.per_thread_ras { threads } else { 1 };
        let ras = (0..ras_count.max(1))
            .map(|_| Ras::new(cfg.ras_entries))
            .collect();
        let history_mask = ((1u32 << cfg.history_bits()) - 1) as u16;
        BranchPredictor {
            cfg,
            btb,
            pht,
            ras,
            history: vec![0; threads],
            history_mask,
            stats: PredictorStats::default(),
        }
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Accumulated prediction-unit counters.
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    /// Clears the activity counters (e.g. at the end of a warmup window).
    /// The BTB, PHT, return stacks and global histories are preserved.
    pub fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }

    #[inline]
    fn pht_index(&self, thread: ThreadId, pc: Addr) -> u32 {
        let h = self.history[thread.index()] as u64;
        (((pc >> 2) ^ h) as u32) & (self.cfg.pht_entries as u32 - 1)
    }

    #[inline]
    fn ras_index(&self, thread: ThreadId) -> usize {
        if self.cfg.per_thread_ras {
            thread.index()
        } else {
            0
        }
    }

    /// Predicts one control instruction fetched by `thread` at `pc`.
    ///
    /// Conditional branches speculatively update the thread's global
    /// history; calls push the RAS and returns pop it (speculatively, so
    /// wrong-path activity corrupts them, as in hardware).
    pub fn predict(&mut self, thread: ThreadId, pc: Addr, op: Opcode) -> Prediction {
        let history_before = self.history[thread.index()];
        self.stats.predictions += 1;
        match op {
            Opcode::CondBranch => {
                let idx = self.pht_index(thread, pc);
                let taken = self.pht.predict(idx);
                let target = if taken {
                    let t = self.btb.lookup(thread, pc);
                    self.stats.btb_lookups += 1;
                    self.stats.btb_hits += u64::from(t.is_some());
                    t
                } else {
                    None
                };
                // Speculative history update.
                let h = &mut self.history[thread.index()];
                *h = ((*h << 1) | u16::from(taken)) & self.history_mask;
                Prediction {
                    taken,
                    target,
                    pht_index: idx,
                    history_before,
                }
            }
            Opcode::Jump | Opcode::JumpInd => {
                let target = self.btb.lookup(thread, pc);
                self.stats.btb_lookups += 1;
                self.stats.btb_hits += u64::from(target.is_some());
                Prediction {
                    taken: true,
                    target,
                    pht_index: 0,
                    history_before,
                }
            }
            Opcode::Call => {
                let target = self.btb.lookup(thread, pc);
                self.stats.btb_lookups += 1;
                self.stats.btb_hits += u64::from(target.is_some());
                let ras = self.ras_index(thread);
                self.ras[ras].push(pc + smt_isa::INST_BYTES);
                Prediction {
                    taken: true,
                    target,
                    pht_index: 0,
                    history_before,
                }
            }
            Opcode::Return => {
                let ras = self.ras_index(thread);
                let target = self.ras[ras].pop();
                self.stats.ras_predictions += 1;
                self.stats.ras_underflows += u64::from(target.is_none());
                Prediction {
                    taken: true,
                    target,
                    pht_index: 0,
                    history_before,
                }
            }
            other => panic!("predict called on non-control opcode {other}"),
        }
    }

    /// Trains the PHT/BTB after a *correct-path* conditional branch
    /// resolves. `pht_index` must be the index returned at prediction time.
    pub fn resolve_cond(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        pht_index: u32,
        taken: bool,
        target: Addr,
    ) {
        self.pht.update(pht_index, taken);
        if taken {
            self.btb.insert(thread, pc, target);
        }
    }

    /// Trains the BTB after a correct-path unconditional control
    /// instruction (jump, indirect jump, call) resolves. Returns are
    /// predicted solely by the RAS and never stored in the BTB.
    pub fn resolve_uncond(&mut self, thread: ThreadId, pc: Addr, op: Opcode, target: Addr) {
        match op {
            Opcode::Jump | Opcode::JumpInd | Opcode::Call => self.btb.insert(thread, pc, target),
            Opcode::Return => {}
            other => panic!("resolve_uncond called on {other}"),
        }
    }

    /// Restores a thread's speculative global history (mispredict recovery).
    pub fn restore_history(&mut self, thread: ThreadId, history: u16) {
        self.history[thread.index()] = history;
    }

    /// Repairs a thread's speculative global history after a resolved
    /// mispredict by reconstructing it from the pre-prediction snapshot and
    /// the actual direction.
    pub fn repair_history(&mut self, thread: ThreadId, history_before: u16, actual_taken: bool) {
        let h = ((history_before << 1) | u16::from(actual_taken)) & self.history_mask;
        self.history[thread.index()] = h;
    }

    /// Probes the BTB without updating LRU state: used by the ITAG and
    /// phantom-branch machinery, and by tests.
    pub fn btb_would_hit(&self, thread: ThreadId, pc: Addr) -> bool {
        let set = self.btb.set_index(pc);
        let tag = self.btb.tag(pc);
        let base = set * self.btb.assoc;
        (0..self.btb.assoc).any(|way| {
            let e = &self.btb.entries[base + way];
            e.valid && e.tag == tag && (!self.btb.thread_tagged || e.thread == thread.0)
        })
    }

    /// Current RAS depth for a thread (diagnostics / tests).
    pub fn ras_depth(&self, thread: ThreadId) -> usize {
        self.ras[self.ras_index(thread)].depth()
    }

    /// Current global history register value for a thread.
    pub fn history(&self, thread: ThreadId) -> u16 {
        self.history[thread.index()]
    }

    /// Serializes the predictor's complete deterministic state — BTB
    /// entries, PHT counters, every RAS, per-thread global histories and
    /// prediction statistics — through `w`, as the `smt-branch` section of
    /// a simulator checkpoint. The configuration is not written; it is
    /// covered by the checkpoint header's fingerprint and
    /// [`restore_state`](BranchPredictor::restore_state) targets a
    /// predictor freshly built from it.
    pub fn save_state<W: std::io::Write>(&self, w: &mut BinWriter<W>) -> std::io::Result<()> {
        w.len(self.btb.entries.len())?;
        for e in &self.btb.entries {
            w.bool(e.valid)?;
            w.u64(e.tag)?;
            w.u8(e.thread)?;
            w.u64(e.target)?;
            w.u8(e.lru)?;
        }
        w.len(self.pht.counters.len())?;
        for &c in &self.pht.counters {
            w.u8(c)?;
        }
        w.len(self.ras.len())?;
        for ras in &self.ras {
            w.len(ras.slots.len())?;
            for &a in &ras.slots {
                w.u64(a)?;
            }
            w.len(ras.top)?;
            w.len(ras.depth)?;
        }
        w.len(self.history.len())?;
        for &h in &self.history {
            w.u16(h)?;
        }
        w.u64(self.stats.predictions)?;
        w.u64(self.stats.btb_lookups)?;
        w.u64(self.stats.btb_hits)?;
        w.u64(self.stats.ras_predictions)?;
        w.u64(self.stats.ras_underflows)
    }

    /// Restores state written by
    /// [`save_state`](BranchPredictor::save_state) into this predictor,
    /// which must have been built from a configuration with identical
    /// table geometry. Malformed data yields
    /// [`std::io::ErrorKind::InvalidData`] / `UnexpectedEof` errors, never
    /// a panic; on error the predictor is left partially written and must
    /// be discarded.
    pub fn restore_state<R: std::io::Read>(&mut self, r: &mut BinReader<R>) -> std::io::Result<()> {
        let n = r.len()?;
        if n != self.btb.entries.len() {
            return Err(binio::invalid(format!(
                "BTB has {n} entries, configuration expects {}",
                self.btb.entries.len()
            )));
        }
        for e in &mut self.btb.entries {
            e.valid = r.bool()?;
            e.tag = r.u64()?;
            e.thread = r.u8()?;
            e.target = r.u64()?;
            e.lru = r.u8()?;
        }
        let n = r.len()?;
        if n != self.pht.counters.len() {
            return Err(binio::invalid(format!(
                "PHT has {n} counters, configuration expects {}",
                self.pht.counters.len()
            )));
        }
        for c in &mut self.pht.counters {
            *c = r.u8()?;
            if *c > 3 {
                return Err(binio::invalid(format!(
                    "PHT counter value {c} out of 2-bit range"
                )));
            }
        }
        let n = r.len()?;
        if n != self.ras.len() {
            return Err(binio::invalid(format!(
                "checkpoint has {n} return address stacks, configuration expects {}",
                self.ras.len()
            )));
        }
        for ras in &mut self.ras {
            let slots = r.len()?;
            if slots != ras.slots.len() {
                return Err(binio::invalid(format!(
                    "RAS has {slots} slots, configuration expects {}",
                    ras.slots.len()
                )));
            }
            for a in &mut ras.slots {
                *a = r.u64()?;
            }
            ras.top = r.len()?;
            ras.depth = r.len()?;
            if ras.top >= ras.slots.len().max(1) || ras.depth > ras.slots.len() {
                return Err(binio::invalid(format!(
                    "RAS pointers (top {}, depth {}) out of range for {} slots",
                    ras.top,
                    ras.depth,
                    ras.slots.len()
                )));
            }
        }
        let n = r.len()?;
        if n != self.history.len() {
            return Err(binio::invalid(format!(
                "checkpoint has {n} history registers, configuration expects {}",
                self.history.len()
            )));
        }
        for h in &mut self.history {
            *h = r.u16()?;
        }
        self.stats.predictions = r.u64()?;
        self.stats.btb_lookups = r.u64()?;
        self.stats.btb_hits = r.u64()?;
        self.stats.ras_predictions = r.u64()?;
        self.stats.ras_underflows = r.u64()?;
        Ok(())
    }
}

use smt_stats::binio::{self, BinReader, BinWriter};

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(PredictorConfig::default(), 8)
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = PredictorConfig::default();
        assert_eq!(cfg.btb_entries, 256);
        assert_eq!(cfg.btb_assoc, 4);
        assert_eq!(cfg.pht_entries, 2048);
        assert_eq!(cfg.ras_entries, 12);
        assert!(cfg.thread_tagged_btb);
        assert_eq!(cfg.history_bits(), 11);
    }

    #[test]
    fn doubled_config_doubles_tables() {
        let cfg = PredictorConfig::doubled();
        assert_eq!(cfg.btb_entries, 512);
        assert_eq!(cfg.pht_entries, 4096);
    }

    #[test]
    fn pht_counters_saturate() {
        let mut pht = Pht::new(16);
        for _ in 0..10 {
            pht.update(3, true);
        }
        assert!(pht.predict(3));
        for _ in 0..10 {
            pht.update(3, false);
        }
        assert!(!pht.predict(3));
        // One taken from strongly-not-taken is still not-taken (hysteresis).
        pht.update(3, true);
        assert!(!pht.predict(3));
        pht.update(3, true);
        assert!(pht.predict(3));
    }

    #[test]
    fn btb_learns_and_thread_tags_isolate() {
        let mut bp = predictor();
        for _ in 0..3 {
            let p = bp.predict(T0, 0x4000, Opcode::CondBranch);
            bp.resolve_cond(T0, 0x4000, p.pht_index, true, 0x9000);
        }
        let p = bp.predict(T0, 0x4000, Opcode::CondBranch);
        assert_eq!(p.target, Some(0x9000));
        // Another thread at the same PC must not see thread 0's entry.
        assert!(!bp.btb_would_hit(T1, 0x4000));
        let p1 = bp.predict(T1, 0x4000, Opcode::CondBranch);
        assert_eq!(
            p1.target, None,
            "thread-tagged BTB must not leak across threads"
        );
    }

    #[test]
    fn untagged_btb_leaks_across_threads() {
        let cfg = PredictorConfig {
            thread_tagged_btb: false,
            ..PredictorConfig::default()
        };
        let mut bp = BranchPredictor::new(cfg, 8);
        bp.resolve_uncond(T0, 0x4000, Opcode::Jump, 0x9000);
        assert!(bp.btb_would_hit(T1, 0x4000));
    }

    #[test]
    fn btb_lru_evicts_oldest() {
        // 8 sets with assoc 4; five distinct tags in one set force an eviction.
        let mut btb = Btb::new(32, 4, true);
        let set_stride = 8 * 4; // sets * INST_BYTES
        let pcs: Vec<Addr> = (0..5)
            .map(|i| 0x1000 + i as u64 * set_stride as u64)
            .collect();
        for &pc in &pcs {
            btb.insert(T0, pc, pc + 0x100);
        }
        // The first-inserted entry is LRU and must be gone.
        assert_eq!(btb.lookup(T0, pcs[0]), None);
        for &pc in &pcs[1..] {
            assert_eq!(btb.lookup(T0, pc), Some(pc + 0x100));
        }
    }

    #[test]
    fn btb_refresh_updates_target() {
        let mut btb = Btb::new(32, 4, true);
        btb.insert(T0, 0x100, 0x200);
        btb.insert(T0, 0x100, 0x300);
        assert_eq!(btb.lookup(T0, 0x100), Some(0x300));
    }

    #[test]
    fn ras_predicts_call_return_pairs() {
        let mut bp = predictor();
        bp.predict(T0, 0x1000, Opcode::Call);
        bp.predict(T0, 0x2000, Opcode::Call);
        let p = bp.predict(T0, 0x3000, Opcode::Return);
        assert_eq!(p.target, Some(0x2000 + smt_isa::INST_BYTES));
        let p = bp.predict(T0, 0x3004, Opcode::Return);
        assert_eq!(p.target, Some(0x1000 + smt_isa::INST_BYTES));
        // Underflow: no prediction available.
        let p = bp.predict(T0, 0x3008, Opcode::Return);
        assert_eq!(p.target, None);
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut ras = Ras::new(2);
        ras.push(0x10);
        ras.push(0x20);
        ras.push(0x30); // overwrites 0x10
        assert_eq!(ras.pop(), Some(0x30));
        assert_eq!(ras.pop(), Some(0x20));
        // The overwritten slot yields stale data in hardware; our model
        // reports stack-empty instead, which the pipeline treats as an
        // unpredicted return.
        assert_eq!(ras.depth(), 0);
    }

    #[test]
    fn per_thread_ras_is_private() {
        let mut bp = predictor();
        bp.predict(T0, 0x1000, Opcode::Call);
        assert_eq!(bp.ras_depth(T0), 1);
        assert_eq!(bp.ras_depth(T1), 0);
        let p = bp.predict(T1, 0x2000, Opcode::Return);
        assert_eq!(p.target, None);
    }

    #[test]
    fn shared_ras_ablation_interferes() {
        let cfg = PredictorConfig {
            per_thread_ras: false,
            ..PredictorConfig::default()
        };
        let mut bp = BranchPredictor::new(cfg, 8);
        bp.predict(T0, 0x1000, Opcode::Call);
        // Thread 1 steals thread 0's return address.
        let p = bp.predict(T1, 0x2000, Opcode::Return);
        assert_eq!(p.target, Some(0x1000 + smt_isa::INST_BYTES));
    }

    #[test]
    fn history_snapshot_and_repair() {
        let mut bp = predictor();
        let h0 = bp.history(T0);
        let p = bp.predict(T0, 0x1000, Opcode::CondBranch);
        assert_eq!(p.history_before, h0);
        assert_ne!(
            bp.history(T0),
            h0,
            "weakly-taken init predicts taken, shifting in a 1"
        );
        // Mispredict: repair with the actual (not-taken) direction.
        bp.repair_history(T0, p.history_before, false);
        assert_eq!(bp.history(T0), (h0 << 1) & ((1 << 11) - 1));
        bp.restore_history(T0, h0);
        assert_eq!(bp.history(T0), h0);
    }

    #[test]
    fn history_affects_pht_index() {
        let mut bp = predictor();
        let i1 = bp.pht_index(T0, 0x1000);
        bp.predict(T0, 0x1000, Opcode::CondBranch); // shifts history
        let i2 = bp.pht_index(T0, 0x1000);
        assert_ne!(i1, i2, "gshare index must depend on global history");
    }

    #[test]
    #[should_panic(expected = "non-control")]
    fn predicting_non_control_panics() {
        let mut bp = predictor();
        bp.predict(T0, 0x1000, Opcode::IntAlu);
    }

    #[test]
    fn stats_count_and_reset_preserves_tables() {
        let mut bp = predictor();
        for _ in 0..3 {
            let p = bp.predict(T0, 0x4000, Opcode::CondBranch);
            bp.resolve_cond(T0, 0x4000, p.pht_index, true, 0x9000);
        }
        bp.predict(T0, 0x1000, Opcode::Call);
        let p = bp.predict(T0, 0x2000, Opcode::Return);
        assert!(p.target.is_some());
        let p = bp.predict(T0, 0x2004, Opcode::Return);
        assert!(p.target.is_none(), "second pop underflows");
        let s = *bp.stats();
        assert_eq!(s.predictions, 6);
        assert!(s.btb_lookups >= 1 && s.btb_hits >= 1);
        assert_eq!(s.ras_predictions, 2);
        assert_eq!(s.ras_underflows, 1);
        assert!(s.btb_hit_rate() > 0.0);

        bp.reset_stats();
        assert_eq!(*bp.stats(), PredictorStats::default());
        // Trained state survives: the taken branch still predicts its target.
        let p = bp.predict(T0, 0x4000, Opcode::CondBranch);
        assert_eq!(p.target, Some(0x9000), "reset_stats must not clear the BTB");
    }

    #[test]
    fn jumps_train_btb_returns_do_not() {
        let mut bp = predictor();
        bp.resolve_uncond(T0, 0x100, Opcode::JumpInd, 0x5000);
        assert!(bp.btb_would_hit(T0, 0x100));
        bp.resolve_uncond(T0, 0x200, Opcode::Return, 0x6000);
        assert!(!bp.btb_would_hit(T0, 0x200));
    }

    #[test]
    fn perfect_prediction_carries_the_outcome() {
        let p = Prediction::perfect(true, 0x7000);
        assert!(p.taken);
        assert_eq!(p.target, Some(0x7000), "never a misfetch");
        let p = Prediction::perfect(false, 0x104);
        assert!(!p.taken);
    }
}

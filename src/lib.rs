//! `smt` — a policy-driven simulator for the ISCA 1996 paper *"Exploiting
//! Choice: Instruction Fetch and Issue on an Implementable Simultaneous
//! Multithreading Processor"* (Tullsen, Eggers, Emer, Levy, Lo, Stamm).
//!
//! This crate is a facade: it re-exports the public API of [`smt_core`]
//! (the pipeline, the policy traits and the configuration builder) together
//! with the workload vocabulary from [`smt_workload`], so downstream users
//! depend on one crate. The underlying crates remain usable individually:
//!
//! | crate | role |
//! |-------|------|
//! | `smt-isa` | opcodes, registers, Table-1 latencies |
//! | `smt-mem` | banked, lockup-free cache hierarchy (Table 2) |
//! | `smt-branch` | thread-tagged BTB, gshare PHT, per-context RAS |
//! | `smt-workload` | synthetic SPEC92-style programs + correct-path oracle |
//! | `smt-stats` | counters, series, text tables |
//! | `smt-core` | the cycle-level pipeline and the policy traits |
//!
//! # Running the headline experiment
//!
//! The paper's central result is that feedback-driven fetch (ICOUNT)
//! outperforms round-robin at the same fetch partition:
//!
//! ```
//! use smt::{standard_mix, FetchPartition, RoundRobin, SimConfig};
//!
//! let icount = SimConfig::new()
//!     .with_benchmarks(standard_mix(), 42)
//!     .build()
//!     .run(2_000);
//! let rr = SimConfig::new()
//!     .with_benchmarks(standard_mix(), 42)
//!     .with_fetch(Box::new(RoundRobin))
//!     .with_partition(FetchPartition::new(2, 8))
//!     .build()
//!     .run(2_000);
//! // Both machines make progress; over longer windows ICOUNT.2.8 wins
//! // (see tests/headline.rs for the full-length assertion).
//! assert!(icount.total_committed() > 0 && rr.total_committed() > 0);
//! ```
//!
//! # Measuring properly
//!
//! Cold-start cache effects depress short measurements. For absolute
//! numbers, open the measurement window after a warmup:
//!
//! ```
//! use smt::{standard_mix, SimConfig};
//!
//! let report = SimConfig::new()
//!     .with_benchmarks(standard_mix(), 42)
//!     .with_warmup(1_000) // simulated, then excluded from the stats
//!     .build()
//!     .run(1_000);
//! assert_eq!(report.warmup_cycles, 1_000);
//! assert_eq!(report.cycles, 1_000);
//! ```
//!
//! The `smt-experiments` crate (binary `smt_exp`) is the standard sweep
//! harness: the Section-4 fetch matrix, the Section-5 issue-policy study,
//! and versioned machine-readable JSON output.
//!
//! # Extending the simulator
//!
//! New fetch or issue heuristics implement [`FetchPolicy`] or
//! [`IssuePolicy`] and plug in through [`SimConfig`]; see the trait
//! documentation and `ROADMAP.md` ("Adding a new fetch policy").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use smt_core::{
    fetch_policy_by_name, issue_policy_by_name, Ablation, Ablations, BrCount, BranchFirst,
    CheckpointError, FetchBreakdown, FetchPartition, FetchPolicy, FleetCell, ICount,
    IssueBreakdown, IssueCandidate, IssuePolicy, MissCount, OldestFirst, OptLast, RoundRobin,
    SimConfig, SimFleet, SimReport, Simulator, SpecLast, ThreadFetchView, ThreadReport,
    WorkloadSpec, MAX_THREADS,
};
pub use smt_workload::{
    standard_mix, Benchmark, Program, RiscvImage, RiscvSource, ThreadContext, TraceImage,
    TraceSource, WorkloadSource, Xlen,
};

/// The underlying crates, re-exported for direct access to cache, predictor
/// and statistics configuration types.
pub mod crates {
    pub use smt_branch;
    pub use smt_isa;
    pub use smt_mem;
    pub use smt_stats;
    pub use smt_workload;
}
